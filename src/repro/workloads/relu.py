"""ReLU (VIP-Bench ``ReLU``).

``k`` independent two's-complement ReLUs: each output bit is
``x_i AND NOT(sign)``.  The circuit has exactly two dependence levels
(one INV level, one AND level) and a ~97 % AND share -- the paper's
Table 2 row (depth 2, AND 96.97 %, ILP 33792) falls out of the structure
directly.  This is the private-inference kernel that motivates the paper:
GC-based ReLU is the bottleneck of hybrid PI protocols.

Each evaluation is completely independent (no reuse), which the paper
notes makes wire traffic insensitive to reordering (Table 3 discussion).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.builder import CircuitBuilder
from ..circuits.stdlib.integer import decode_signed, encode_int
from .base import BuiltWorkload, PaperTable2Row, Workload

__all__ = ["build", "reference", "WORKLOAD"]


def build(k: int = 512, width: int = 32) -> BuiltWorkload:
    """``k`` independent ``width``-bit integer ReLUs (Bob holds the data)."""
    if k < 1:
        raise ValueError("need at least one ReLU")
    builder = CircuitBuilder()
    # Alice contributes one (unused) bit so the circuit stays two-party,
    # mirroring PI deployments where the server holds no plaintext
    # activations -- Bob supplies every activation value.
    builder.add_garbler_inputs(1)
    values = [builder.add_evaluator_inputs(width) for _ in range(k)]
    for value in values:
        keep = builder.NOT(value[-1])  # level 1: INV of the sign bit
        for bit in value[:-1]:
            builder.mark_outputs([builder.AND(bit, keep)])  # level 2: AND
        builder.mark_outputs([builder.AND(value[-1], keep)])  # always 0
    circuit = builder.build(f"relu_k{k}_w{width}")

    def encode_inputs(xs: Sequence[int]) -> Tuple[List[int], List[int]]:
        if len(xs) != k:
            raise ValueError(f"expected {k} values")
        evaluator: List[int] = []
        for value in xs:
            evaluator.extend(encode_int(value, width))
        return [1], evaluator

    def ref(xs: Sequence[int]) -> List[int]:
        bits: List[int] = []
        for value in reference(xs, width):
            bits.extend(encode_int(value, width))
        return bits

    def decode_outputs(bits: Sequence[int]) -> List[int]:
        return [
            decode_signed(bits[i * width : (i + 1) * width]) for i in range(k)
        ]

    return BuiltWorkload(
        name="ReLU",
        circuit=circuit,
        params={"k": k, "width": width},
        encode_inputs=encode_inputs,
        reference=ref,
        decode_outputs=decode_outputs,
    )


def reference(xs: Sequence[int], width: int = 32) -> List[int]:
    """Signed ReLU over two's-complement ``width``-bit values."""
    out = []
    mask = (1 << width) - 1
    sign_bit = 1 << (width - 1)
    for value in xs:
        value &= mask
        out.append(0 if value & sign_bit else value)
    return out


def plaintext_ops(k: int = 512, width: int = 32) -> int:
    """One max per element."""
    return k


WORKLOAD = Workload(
    name="ReLU",
    description="Batch of independent integer ReLUs (private-inference kernel)",
    build=build,
    scaled_params={"k": 512, "width": 32},
    paper_params={"k": 2048, "width": 32},
    plaintext_ops=plaintext_ops,
    paper_table2=PaperTable2Row(
        levels=2, wires_k=133, gates_k=68, and_pct=96.97, ilp=33792,
        spent_wire_pct=49.23,
    ),
    character="shallow",
)
