"""Whole-circuit garbling (Alice / the Garbler).

Garbling is the offline phase: the Garbler draws the global offset R and
one label pair per input wire, then walks the netlist in topological
order producing (a) a 32-byte garbled table per AND gate and (b) the
zero-label of every internal wire.  XOR and INV are free (no table, no
hashing).  Output decoding information is the permute bit of each output
wire's zero-label.

Two execution strategies produce bitwise-identical results:

* :func:`garble_circuit` -- the per-gate reference walk;
* :func:`garble_circuit_batched` -- a level-scheduled walk that FreeXORs
  a whole dependence level at once and hashes every AND gate of a level
  in one :mod:`repro.gc.backends` call (vectorized when NumPy is
  present).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..circuits.netlist import Circuit, GateOp
from .halfgate import GarbledTable, garble_and, garble_not, garble_xor
from .hashing import GateHasher
from .labels import lsb
from .rng import LabelPrg

__all__ = ["GarbledCircuit", "Garbler", "garble_circuit", "garble_circuit_batched"]


@dataclass
class GarbledCircuit:
    """Everything the Garbler ships to the Evaluator (minus input labels).

    ``tables`` holds one entry per AND gate in netlist order -- exactly
    the stream HAAC's table queues consume.  ``decode_bits`` maps each
    circuit output to the permute bit of its zero-label so the Evaluator
    can decode its result.
    """

    tables: List[GarbledTable]
    decode_bits: List[int]
    n_and_gates: int

    def table_bytes(self) -> int:
        """Total garbled-table traffic in bytes (32 B per AND gate)."""
        return 32 * len(self.tables)


@dataclass
class Garbler:
    """Holds the Garbler's secrets for one circuit execution.

    Attributes
    ----------
    r:
        The FreeXOR global offset (lsb = 1).
    zero_labels:
        ``zero_labels[w]`` is W_w^0 for every wire ``w``.
    hasher:
        The gate hash with call accounting (re-keyed by default, as HAAC
        mandates).
    """

    circuit: Circuit
    r: int
    zero_labels: List[int]
    hasher: GateHasher
    garbled: GarbledCircuit = field(init=False)

    def input_label(self, wire: int, bit: int) -> int:
        """The label encoding ``bit`` on input wire ``wire``."""
        if wire >= self.circuit.n_inputs:
            raise ValueError(f"wire {wire} is not a primary input")
        return self.zero_labels[wire] ^ (self.r if bit else 0)

    def input_labels_for(self, wires: Sequence[int], bits: Sequence[int]) -> List[int]:
        if len(wires) != len(bits):
            raise ValueError("wires and bits must align")
        return [self.input_label(w, b) for w, b in zip(wires, bits)]

    def decode(self, output_labels: Sequence[int]) -> List[int]:
        """Decode output labels to plaintext bits using the decode map."""
        bits = []
        for wire, label in zip(self.circuit.outputs, output_labels):
            bits.append(lsb(label) ^ lsb(self.zero_labels[wire]))
        return bits

    def wire_label(self, wire: int, bit: int) -> int:
        """Label of any wire for a given plaintext bit (test hook)."""
        return self.zero_labels[wire] ^ (self.r if bit else 0)


def garble_circuit(
    circuit: Circuit, seed: int = 0, rekeyed: bool = True
) -> Garbler:
    """Garble ``circuit`` deterministically from ``seed``.

    Gate indices used as hash tweaks are the gate's position in the
    netlist, matching HAAC's implicit instruction-position addressing.
    """
    circuit.validate()
    prg = LabelPrg(seed)
    r = prg.next_odd_block()
    hasher = GateHasher(rekeyed=rekeyed)

    zero_labels = [0] * circuit.n_wires
    for wire in range(circuit.n_inputs):
        zero_labels[wire] = prg.next_block()

    tables: List[GarbledTable] = []
    for gate_index, gate in enumerate(circuit.gates):
        if gate.op is GateOp.AND:
            out_zero, table = garble_and(
                zero_labels[gate.a], zero_labels[gate.b], r, gate_index, hasher
            )
            zero_labels[gate.out] = out_zero
            tables.append(table)
        elif gate.op is GateOp.XOR:
            zero_labels[gate.out] = garble_xor(zero_labels[gate.a], zero_labels[gate.b])
        else:  # INV
            zero_labels[gate.out] = garble_not(zero_labels[gate.a], r)

    decode_bits = [lsb(zero_labels[w]) for w in circuit.outputs]
    garbler = Garbler(circuit=circuit, r=r, zero_labels=zero_labels, hasher=hasher)
    garbler.garbled = GarbledCircuit(
        tables=tables,
        decode_bits=decode_bits,
        n_and_gates=len(tables),
    )
    return garbler


# ---------------------------------------------------------------------------
# Level-scheduled batched garbling
# ---------------------------------------------------------------------------


def garble_circuit_batched(
    circuit: Circuit,
    seed: int = 0,
    rekeyed: bool = True,
    backend: Optional[Union[str, "object"]] = None,
) -> Garbler:
    """Garble ``circuit`` level by level with a batch hash backend.

    Bitwise-identical to :func:`garble_circuit` for the same ``seed``:
    the PRG draws (R, then one label per input wire) happen in the same
    order, gate tweaks are still netlist positions, and every backend
    reproduces the scalar hash exactly.  Only the *schedule* changes:
    gates are processed per ASAP dependence level, FreeXOR/INV levels
    collapse into bulk XORs and all AND gates of a level go through one
    backend hash call (4 hashes per gate).

    ``backend`` is a backend name, instance, or ``None`` (environment /
    auto selection; falls back to the scalar reference without NumPy).
    """
    from .backends import resolve_backend

    resolved = resolve_backend(backend)
    circuit.validate()
    prg = LabelPrg(seed)
    r = prg.next_odd_block()
    hasher = GateHasher(rekeyed=rekeyed)
    input_labels = [prg.next_block() for _ in range(circuit.n_inputs)]

    if getattr(resolved, "vectorized", False):
        zero_labels, tables = _garble_levels_vectorized(
            circuit, input_labels, r, rekeyed, resolved, hasher
        )
    else:
        zero_labels, tables = _garble_levels_generic(
            circuit, circuit.topological_levels(), input_labels, r, rekeyed,
            resolved, hasher,
        )

    decode_bits = [lsb(zero_labels[w]) for w in circuit.outputs]
    garbler = Garbler(circuit=circuit, r=r, zero_labels=zero_labels, hasher=hasher)
    garbler.garbled = GarbledCircuit(
        tables=tables,
        decode_bits=decode_bits,
        n_and_gates=len(tables),
    )
    return garbler


def _garble_levels_generic(
    circuit: Circuit,
    levels: List[List[int]],
    input_labels: List[int],
    r: int,
    rekeyed: bool,
    backend,
    hasher: GateHasher,
) -> tuple:
    """Level-batched garbling over Python-int labels (any backend)."""
    gates = circuit.gates
    zero = input_labels + [0] * len(gates)
    table_by_pos: Dict[int, GarbledTable] = {}
    for level in levels:
        and_positions: List[int] = []
        for position in level:
            gate = gates[position]
            if gate.op is GateOp.XOR:
                zero[gate.out] = zero[gate.a] ^ zero[gate.b]
            elif gate.op is GateOp.INV:
                zero[gate.out] = zero[gate.a] ^ r
            else:
                and_positions.append(position)
        if not and_positions:
            continue
        labels: List[int] = []
        tweaks: List[int] = []
        for position in and_positions:
            gate = gates[position]
            wa0 = zero[gate.a]
            wb0 = zero[gate.b]
            j_g = 2 * position
            j_e = j_g + 1
            labels.extend((wa0, wa0 ^ r, wb0, wb0 ^ r))
            tweaks.extend((j_g, j_g, j_e, j_e))
        hashes = backend.hash_labels(labels, tweaks, rekeyed)
        hasher.record_batch(len(labels))
        for index, position in enumerate(and_positions):
            h_a0, h_a1, h_b0, h_b1 = hashes[4 * index : 4 * index + 4]
            gate = gates[position]
            wa0 = zero[gate.a]
            wb0 = zero[gate.b]
            p_a = wa0 & 1
            p_b = wb0 & 1
            t_g = h_a0 ^ h_a1 ^ (r if p_b else 0)
            w_g0 = h_a0 ^ (t_g if p_a else 0)
            t_e = h_b0 ^ h_b1 ^ wa0
            w_e0 = h_b0 ^ ((t_e ^ wa0) if p_b else 0)
            zero[gate.out] = w_g0 ^ w_e0
            table_by_pos[position] = GarbledTable(t_g, t_e)
    tables = [table_by_pos[position] for position in sorted(table_by_pos)]
    return zero, tables


def _vector_plan(circuit: Circuit):
    """Precompiled index arrays for the vectorized engines, cached.

    One phase per multiplicative depth (see
    :meth:`Circuit.and_level_schedule`):
    ``(and_positions, a_idx, b_idx, out_idx, free_groups)`` with every
    member an ``int64`` gather/scatter array (``None`` when the phase
    has no AND batch), and ``free_groups`` a list of
    ``(xor_a, xor_b, xor_out, inv_a, inv_out)`` array tuples.  The plan
    is a pure function of the netlist, so garbler, evaluator and every
    repeat of a benchmark share one build.
    """
    import numpy as np

    plan = getattr(circuit, "_vector_plan_cache", None)
    if plan is not None:
        return plan
    gates = circuit.gates
    plan = []
    for and_batch, free_groups in circuit.and_level_schedule():
        if and_batch:
            and_arrays = (
                np.asarray(and_batch, dtype=np.int64),
                np.asarray([gates[p].a for p in and_batch], dtype=np.int64),
                np.asarray([gates[p].b for p in and_batch], dtype=np.int64),
                np.asarray([gates[p].out for p in and_batch], dtype=np.int64),
            )
        else:
            and_arrays = (None, None, None, None)
        compiled_groups = []
        for group in free_groups:
            xor_a: List[int] = []
            xor_b: List[int] = []
            xor_out: List[int] = []
            inv_a: List[int] = []
            inv_out: List[int] = []
            for position in group:
                gate = gates[position]
                if gate.op is GateOp.XOR:
                    xor_a.append(gate.a)
                    xor_b.append(gate.b)
                    xor_out.append(gate.out)
                else:
                    inv_a.append(gate.a)
                    inv_out.append(gate.out)
            compiled_groups.append(
                (
                    np.asarray(xor_a, dtype=np.int64) if xor_a else None,
                    np.asarray(xor_b, dtype=np.int64) if xor_b else None,
                    np.asarray(xor_out, dtype=np.int64) if xor_out else None,
                    np.asarray(inv_a, dtype=np.int64) if inv_a else None,
                    np.asarray(inv_out, dtype=np.int64) if inv_out else None,
                )
            )
        plan.append(and_arrays + (compiled_groups,))
    circuit._vector_plan_cache = plan
    return plan


def _prepare_and_schedules(circuit: Circuit, backend, rekeyed: bool):
    """Pre-expand every AND gate's pair of hash keys in one backend call.

    Tweaks are static (``2p`` / ``2p + 1`` for netlist position ``p``),
    so the whole program's key schedules can be computed before any
    label exists -- the software analogue of HAAC streaming round keys
    ahead of the Half-Gate pipeline.  Returns a schedule handle (see
    :meth:`LabelHashBackend.expand_keys_program`; a plain array for
    in-process backends, a worker-resident handle for the parallel one)
    with the generator/evaluator rows of the ``i``-th AND gate *in plan
    order* at ``2i`` / ``2i + 1``; in fixed-key mode, the raw tweak
    block array.
    """
    tweaks: List[int] = []
    for and_batch, _ in circuit.and_level_schedule():
        for position in and_batch:
            tweaks.append(2 * position)
            tweaks.append(2 * position + 1)
    keys = backend.tweaks_to_keys(tweaks)
    return backend.expand_keys_program(keys) if rekeyed else keys


def _run_free_groups(state, free_groups, r_vec) -> None:
    """Apply every XOR/INV group of one phase as bulk array XORs.

    ``r_vec`` is the FreeXOR offset row for the Garbler, or ``None`` on
    the Evaluator side (where INV forwards the label unchanged).
    """
    for xor_a, xor_b, xor_out, inv_a, inv_out in free_groups:
        if xor_out is not None:
            state[xor_out] = state[xor_a] ^ state[xor_b]
        if inv_out is not None:
            if r_vec is None:
                state[inv_out] = state[inv_a]
            else:
                state[inv_out] = state[inv_a] ^ r_vec


def _garble_levels_vectorized(
    circuit: Circuit,
    input_labels: List[int],
    r: int,
    rekeyed: bool,
    backend,
    hasher: GateHasher,
) -> tuple:
    """Fully vectorized garbling: wire state lives in a uint32 array.

    The whole label store is an ``(n_wires, 4) uint32`` array.  Work is
    scheduled by multiplicative depth (:meth:`Circuit.and_level_schedule`),
    so each phase FreeXORs its independent gate groups with bulk XORs
    and hashes *all four labels of every AND gate in the batch* with a
    single backend call against pre-expanded key schedules.
    """
    import numpy as np

    state = np.zeros((circuit.n_wires, 4), dtype=np.uint32)
    if input_labels:
        state[: len(input_labels)] = backend.ints_to_blocks(input_labels)
    r_vec = backend.ints_to_blocks([r])[0]
    plan = _vector_plan(circuit)
    sched = _prepare_and_schedules(circuit, backend, rekeyed)

    table_positions: List[np.ndarray] = []
    generator_rows: List[np.ndarray] = []
    evaluator_rows: List[np.ndarray] = []

    offset = 0
    for positions, a_idx, b_idx, out_idx, free_groups in plan:
        if positions is not None:
            m = len(positions)
            wa0 = state[a_idx]
            wb0 = state[b_idx]
            labels = np.concatenate([wa0, wa0 ^ r_vec, wb0, wb0 ^ r_vec])
            if rekeyed:
                # Generator rows at 2i, evaluator rows at 2i + 1; the
                # backend gathers them from the (possibly worker-
                # resident) whole-program expansion by index.
                rows_g = 2 * np.arange(offset, offset + m, dtype=np.int64)
                rows = np.concatenate([rows_g, rows_g, rows_g + 1, rows_g + 1])
                hashes = backend.hash_schedule_rows(labels, sched, rows)
            else:
                sched_g = sched[2 * offset : 2 * (offset + m) : 2]
                sched_e = sched[2 * offset + 1 : 2 * (offset + m) : 2]
                key_rows = np.concatenate([sched_g, sched_g, sched_e, sched_e])
                hashes = backend.hash_fixed_key_blocks(labels, key_rows)
            offset += m
            hasher.record_batch(4 * m)
            h_a0 = hashes[:m]
            h_a1 = hashes[m : 2 * m]
            h_b0 = hashes[2 * m : 3 * m]
            h_b1 = hashes[3 * m :]

            p_a = (wa0[:, 3] & 1).astype(bool)
            p_b = (wb0[:, 3] & 1).astype(bool)
            t_g = h_a0 ^ h_a1
            t_g[p_b] ^= r_vec
            w_g0 = h_a0.copy()
            w_g0[p_a] ^= t_g[p_a]
            t_e = h_b0 ^ h_b1 ^ wa0
            w_e0 = h_b0.copy()
            masked = t_e ^ wa0
            w_e0[p_b] ^= masked[p_b]
            state[out_idx] = w_g0 ^ w_e0

            table_positions.append(positions)
            generator_rows.append(t_g)
            evaluator_rows.append(t_e)
        _run_free_groups(state, free_groups, r_vec)

    zero_labels = backend.blocks_to_ints(state)
    tables: List[GarbledTable] = []
    if table_positions:
        positions = np.concatenate(table_positions)
        order = np.argsort(positions, kind="stable")
        g_ints = backend.blocks_to_ints(np.concatenate(generator_rows)[order])
        e_ints = backend.blocks_to_ints(np.concatenate(evaluator_rows)[order])
        tables = [GarbledTable(g, e) for g, e in zip(g_ints, e_ints)]
    return zero_labels, tables
