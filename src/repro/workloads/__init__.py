"""VIP-Bench workload circuits (paper section 5, Table 2)."""

from .base import BuiltWorkload, PaperTable2Row, Workload
from .registry import (
    PAPER_ORDER,
    WORKLOADS,
    build_all_scaled,
    get_workload,
    iter_workloads,
)

__all__ = [
    "Workload",
    "BuiltWorkload",
    "PaperTable2Row",
    "WORKLOADS",
    "PAPER_ORDER",
    "get_workload",
    "iter_workloads",
    "build_all_scaled",
]
