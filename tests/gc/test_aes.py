"""AES-128 correctness: FIPS-197 vectors, structure and properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.aes import (
    INV_S_BOX,
    S_BOX,
    decrypt_block,
    encrypt_block,
    encrypt_block_reference,
    expand_key,
    key_expansion_words,
)

# FIPS-197 Appendix B / C.1 vectors.
FIPS_KEY = 0x000102030405060708090A0B0C0D0E0F
FIPS_PT = 0x00112233445566778899AABBCCDDEEFF
FIPS_CT = 0x69C4E0D86A7B0430D8CDB78070B4C55A

# FIPS-197 Appendix A key (the "Thats my Kung Fu" example).
APPENDIX_A_KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
APPENDIX_A_PT = 0x3243F6A8885A308D313198A2E0370734
APPENDIX_A_CT = 0x3925841D02DC09FBDC118597196A0B32


class TestVectors:
    def test_fips_197_c1(self):
        assert encrypt_block(FIPS_PT, FIPS_KEY) == FIPS_CT

    def test_fips_197_appendix_a(self):
        assert encrypt_block(APPENDIX_A_PT, APPENDIX_A_KEY) == APPENDIX_A_CT

    def test_reference_matches_vectors(self):
        assert encrypt_block_reference(FIPS_PT, FIPS_KEY) == FIPS_CT
        assert encrypt_block_reference(APPENDIX_A_PT, APPENDIX_A_KEY) == APPENDIX_A_CT

    def test_decrypt_inverts_vectors(self):
        assert decrypt_block(FIPS_CT, FIPS_KEY) == FIPS_PT

    def test_zero_key_zero_block(self):
        # Known AES-128(0, 0) value.
        assert encrypt_block(0, 0) == 0x66E94BD4EF8A2C3B884CFA59CA342B2E


class TestSbox:
    def test_sbox_known_entries(self):
        assert S_BOX[0x00] == 0x63
        assert S_BOX[0x01] == 0x7C
        assert S_BOX[0x53] == 0xED
        assert S_BOX[0xFF] == 0x16

    def test_sbox_is_permutation(self):
        assert sorted(S_BOX) == list(range(256))

    def test_inverse_sbox(self):
        for value in range(256):
            assert INV_S_BOX[S_BOX[value]] == value

    def test_sbox_has_no_fixed_points(self):
        assert all(S_BOX[v] != v for v in range(256))


class TestKeyExpansion:
    def test_word_count(self):
        assert len(key_expansion_words(FIPS_KEY)) == 44

    def test_fips_round_keys(self):
        words = key_expansion_words(APPENDIX_A_KEY)
        # FIPS-197 Appendix A: w[4..7] of the expanded key.
        assert words[4] == 0xA0FAFE17
        assert words[5] == 0x88542CB1
        assert words[6] == 0x23A33939
        assert words[7] == 0x2A6C7605
        assert words[43] == 0xB6630CA6

    def test_cached_expansion_matches(self):
        assert list(expand_key(FIPS_KEY)) == key_expansion_words(FIPS_KEY)

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            key_expansion_words(1 << 128)

    def test_rejects_negative_key(self):
        with pytest.raises(ValueError):
            key_expansion_words(-1)


_BLOCKS = st.integers(min_value=0, max_value=(1 << 128) - 1)


@settings(max_examples=30, deadline=None)
@given(block=_BLOCKS, key=_BLOCKS)
def test_ttable_matches_reference(block, key):
    assert encrypt_block(block, key) == encrypt_block_reference(block, key)


@settings(max_examples=30, deadline=None)
@given(block=_BLOCKS, key=_BLOCKS)
def test_decrypt_inverts_encrypt(block, key):
    assert decrypt_block(encrypt_block(block, key), key) == block


@settings(max_examples=30, deadline=None)
@given(block=_BLOCKS, key=_BLOCKS)
def test_output_in_range(block, key):
    assert 0 <= encrypt_block(block, key) < (1 << 128)


@settings(max_examples=20, deadline=None)
@given(key=st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_encryption_is_injective_in_block(key):
    # Two distinct blocks never collide under the same key (permutation).
    a = encrypt_block(0x1234, key)
    b = encrypt_block(0x5678, key)
    assert a != b


class TestExpandKeyCache:
    """The hot scalar path must not re-expand per hash call.

    Re-keyed garbling hashes each half-gate's two labels under the same
    tweak key, so a correctly working LRU means exactly two schedule
    computations per AND gate (one per half-gate) -- not four.
    """

    def test_cache_is_generously_sized(self):
        info = expand_key.cache_info()
        assert info.maxsize is not None and info.maxsize >= 4096

    def test_expansion_is_cached_per_tweak(self):
        expand_key.cache_clear()
        expand_key(0xDEAD)
        expand_key(0xDEAD)
        info = expand_key.cache_info()
        assert info.misses == 1
        assert info.hits == 1

    def test_garbler_expands_twice_per_and_gate(self):
        from repro.circuits.builder import CircuitBuilder
        from repro.circuits.stdlib.integer import mul
        from repro.gc.garble import garble_circuit

        builder = CircuitBuilder()
        xs = builder.add_garbler_inputs(8)
        ys = builder.add_evaluator_inputs(8)
        builder.mark_outputs(mul(builder, xs, ys))
        circuit = builder.build("mul8")
        n_and = circuit.stats().and_gates
        assert n_and > 0

        expand_key.cache_clear()
        garbler = garble_circuit(circuit, seed=42)
        info = expand_key.cache_info()
        assert garbler.hasher.calls == 4 * n_and
        # Misses: one schedule per half-gate tweak plus the PRG key.
        assert info.misses == 2 * n_and + 1
        # Hits: the second label of each half-gate reuses the schedule,
        # and every PRG block after the first hits the PRG-key schedule.
        assert info.hits >= 2 * n_and
