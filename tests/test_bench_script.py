"""Bench tooling smoke tests: throughput/sim scripts + regression gate."""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = ROOT / "scripts" / "bench_throughput.py"
SIM_SCRIPT = ROOT / "scripts" / "bench_sim.py"
SCENARIOS_SCRIPT = ROOT / "scripts" / "bench_scenarios.py"
CHECK_SCRIPT = ROOT / "scripts" / "check_bench_regression.py"


def test_bench_throughput_quick_emits_valid_json(tmp_path):
    out = tmp_path / "BENCH_throughput.json"
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--quick", "--json", str(out),
         "--workers", "1,2"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    data = json.loads(out.read_text())
    assert data["schema"] == "repro.bench_throughput/v1"
    assert data["circuit"]["gates"] > 0
    assert data["circuit"]["and_gates"] > 0
    assert "scalar" in data["backends"]
    for entry in data["backends"].values():
        for phase in ("garble", "evaluate"):
            assert entry[phase]["seconds"] > 0
            assert entry[phase]["gates_per_s"] > 0
            assert entry[phase]["and_gates_per_s"] > 0
    # Any skipped backend must say why.
    for skipped in data["skipped"]:
        assert skipped["backend"] and skipped["reason"]
    # Worker-scaling curve: one entry per requested count, plus the
    # context needed to interpret it (cores actually visible).
    scaling = data["parallel"]
    assert scaling["cpu_count"] >= 1
    assert sorted(scaling["workers"]) == ["1", "2"]
    for entry in scaling["workers"].values():
        assert entry["garble"]["gates_per_s"] > 0
        assert entry["evaluate"]["gates_per_s"] > 0
    assert "2" in scaling["speedup_vs_1"]


def test_bench_throughput_workers_none_skips_sweep(tmp_path):
    out = tmp_path / "BENCH_throughput.json"
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--quick", "--json", str(out),
         "--workers", "none"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "parallel" not in json.loads(out.read_text())


def test_bench_throughput_rejects_unknown_circuit():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--circuit", "nonsense"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=60,
    )
    assert proc.returncode != 0


def test_bench_sim_quick_merges_into_report(tmp_path):
    out = tmp_path / "BENCH_throughput.json"
    # Pre-seed a garbling report so the merge path is exercised.
    out.write_text(json.dumps({
        "schema": "repro.bench_throughput/v1",
        "backends": {"scalar": {"garble": {"gates_per_s": 1.0},
                                "evaluate": {"gates_per_s": 1.0}}},
    }))
    proc = subprocess.run(
        [sys.executable, str(SIM_SCRIPT), "--quick", "--json", str(out)],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    data = json.loads(out.read_text())
    assert data["schema"] == "repro.bench_throughput/v1"
    assert "scalar" in data["backends"]  # merge preserved existing section
    sim = data["sim"]
    assert sim["schema"] == "repro.bench_sim/v1"
    assert sim["circuit"]["gates"] > 0
    for model in ("decoupled", "coupled", "pull_based", "multicore"):
        entry = sim["models"][model]
        assert entry["seconds"] > 0
        assert entry["cycles_per_s"] > 0
    multicore = sim["models"]["multicore"]
    assert multicore["cold_seconds"] >= multicore["warm_seconds"] * 0.5
    assert multicore["cache_stats"]["hits"] > 0
    engines = sim["engines"]
    for engine in ("numpy", "vectorized", "reference"):
        assert engines[engine]["cycles_per_s"] > 0
    # All engines replay the same model: identical simulated cycles.
    assert (
        engines["numpy"]["sim_cycles"]
        == engines["vectorized"]["sim_cycles"]
        == engines["reference"]["sim_cycles"]
    )
    assert engines["speedup_numpy_vs_vectorized"] > 0
    assert "aes128" not in engines  # full-scale comparison skipped on --quick
    # Batched-grid comparison: one scenario grid retired through the
    # batched config axis, with the serial per-point loop as context.
    grid = sim["batched_grid"]
    assert grid["scenarios"] == 1 + grid["queue_points"] + grid["bandwidth_points"]
    assert grid["seconds"] > 0 and grid["serial_seconds"] > 0
    assert grid["scenarios_per_s"] > 0
    assert grid["speedup_batched_vs_serial"] > 0


def test_bench_scenarios_quick_emits_grid(tmp_path):
    out = tmp_path / "BENCH_scenarios.json"
    proc = subprocess.run(
        [sys.executable, str(SCENARIOS_SCRIPT), "--quick", "--json", str(out),
         "--queues", "64,4096,1048576", "--bandwidths", "8.8,35.2,512"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    data = json.loads(out.read_text())
    assert data["schema"] == "repro.bench_scenarios/v2"
    assert len(data["workloads"]) >= 3
    for section in data["workloads"].values():
        assert section["instructions"] > 0
        queue_points = section["queue_sweep"]
        assert [p["queue_bytes_per_ge"] for p in queue_points] == [
            64, 4096, 1048576,
        ]
        # Coupling can only hurt, and generous SRAM must converge to
        # the decoupled runtime (the paper's complete-decoupling claim).
        for point in queue_points:
            assert point["slowdown_vs_decoupled"] >= 1.0 - 1e-9
        assert abs(queue_points[-1]["slowdown_vs_decoupled"] - 1.0) < 1e-9
        # More bandwidth never slows the decoupled model down.
        runtimes = [p["runtime_cycles"] for p in section["bandwidth_sweep"]]
        assert runtimes == sorted(runtimes, reverse=True)
        assert section["bandwidth_sweep"][0]["memory_bound"] in (True, False)
        # Persisted per-workload summary: every scenario counted (the
        # decoupled baseline included), knee/flip carried in-artifact.
        summary = section["summary"]
        assert summary["scenarios"] == 1 + 3 + 3
        # Generous SRAM converged above, so the knee is always reached.
        assert summary["queue_knee_bytes_per_ge"] in (64, 4096, 1048576)
        # Batched vs serial context rides along by default, and the
        # script itself asserts per-point bit-identity between them.
        assert section["sweep_seconds"] > 0
        assert section["serial_sweep_seconds"] > 0
        assert section["batched_speedup"] > 0
    assert "scenarios in" in proc.stdout
    # The artifact round-trips through the analysis renderer.
    sys.path.insert(0, str(ROOT / "src"))
    try:
        from repro.analysis import scenarios as sc
    finally:
        sys.path.pop(0)
    text = sc.render_report(sc.load_report(out))
    for name in data["workloads"]:
        assert f"{name}: coupled slowdown" in text


def test_bench_scenarios_unreached_sweeps_are_explicit(tmp_path):
    """A grid too small to reach the knee/flip must say so, in the
    artifact (nulls in summary) and on stdout -- not print 'at NoneB'."""
    out = tmp_path / "BENCH_scenarios.json"
    proc = subprocess.run(
        [sys.executable, str(SCENARIOS_SCRIPT), "--quick",
         "--workloads", "ReLU", "--queues", "64", "--bandwidths", "8.8",
         "--json", str(out)],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.count("not reached in sweep") == 2
    assert "None" not in proc.stdout
    summary = json.loads(out.read_text())["workloads"]["ReLU"]["summary"]
    assert summary["queue_knee_bytes_per_ge"] is None
    assert summary["compute_bound_from_gb_s"] is None
    assert summary["scenarios"] == 3  # baseline + one queue + one bandwidth


def test_bench_scenarios_summary_lines_tolerate_empty_sweeps():
    """An empty --queues/--bandwidths sweep must not crash the summary
    text (max() over an empty list)."""
    sys.path.insert(0, str(ROOT / "scripts"))
    try:
        from bench_scenarios import summary_lines
    finally:
        sys.path.pop(0)
    section = {"summary": {
        "scenarios": 1,
        "queue_knee_bytes_per_ge": None,
        "compute_bound_from_gb_s": None,
    }}
    knee_text, flip_text = summary_lines(section, [], [])
    assert "no queue points" in knee_text
    assert "no bandwidth points" in flip_text


def test_bench_scenarios_no_serial_flag(tmp_path):
    out = tmp_path / "BENCH_scenarios.json"
    proc = subprocess.run(
        [sys.executable, str(SCENARIOS_SCRIPT), "--quick", "--no-serial",
         "--workloads", "ReLU", "--json", str(out)],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    section = json.loads(out.read_text())["workloads"]["ReLU"]
    assert "serial_sweep_seconds" not in section
    assert "batched_speedup" not in section


def test_bench_scenarios_rejects_unknown_workload(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(SCENARIOS_SCRIPT), "--workloads", "NotAThing",
         "--json", str(tmp_path / "out.json")],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=60,
    )
    assert proc.returncode != 0


def _report(scale=1.0, drop=()):
    """Synthetic BENCH_throughput.json content for the regression gate."""
    report = {
        "schema": "repro.bench_throughput/v1",
        "backends": {
            "scalar": {
                "garble": {"gates_per_s": 40_000.0 * scale},
                "evaluate": {"gates_per_s": 60_000.0 * scale},
            },
        },
        "sim": {
            "schema": "repro.bench_sim/v1",
            "models": {
                "decoupled": {"cycles_per_s": 400_000.0 * scale},
                "multicore": {"cycles_per_s": 15_000.0 * scale},
            },
            "batched_grid": {"scenarios_per_s": 20_000.0 * scale},
        },
    }
    for name in drop:
        report["sim"]["models"].pop(name, None)
    return report


def _run_check(tmp_path, current, baseline, extra=()):
    current_path = tmp_path / "current.json"
    baseline_path = tmp_path / "baseline.json"
    current_path.write_text(json.dumps(current))
    baseline_path.write_text(json.dumps(baseline))
    return subprocess.run(
        [sys.executable, str(CHECK_SCRIPT), str(current_path),
         "--baseline", str(baseline_path), *extra],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=60,
    )


def test_check_regression_passes_within_threshold(tmp_path):
    proc = _run_check(tmp_path, _report(scale=0.85), _report())
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ok:" in proc.stdout


def test_check_regression_fails_beyond_threshold(tmp_path):
    proc = _run_check(tmp_path, _report(scale=0.5), _report())
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stdout
    assert "backends.scalar.garble.gates_per_s" in proc.stdout
    assert "sim.models.multicore.cycles_per_s" in proc.stdout
    assert "sim.batched_grid.scenarios_per_s" in proc.stdout


def test_check_regression_fails_on_missing_metric(tmp_path):
    proc = _run_check(
        tmp_path, _report(drop=("multicore",)), _report()
    )
    assert proc.returncode == 1
    assert "missing from current report" in proc.stdout


def test_check_regression_threshold_flag(tmp_path):
    proc = _run_check(
        tmp_path, _report(scale=0.5), _report(), extra=["--threshold", "0.6"]
    )
    assert proc.returncode == 0


def _parallel_section(scale=1.0, cpu_count=1):
    return {
        "cpu_count": cpu_count,
        "inner": "numpy",
        "workers": {
            "1": {"garble": {"gates_per_s": 300_000.0 * scale},
                  "evaluate": {"gates_per_s": 400_000.0 * scale}},
            "2": {"garble": {"gates_per_s": 200_000.0 * scale},
                  "evaluate": {"gates_per_s": 300_000.0 * scale}},
        },
    }


def test_check_regression_tracks_parallel_on_same_core_count(tmp_path):
    baseline = _report()
    baseline["parallel"] = _parallel_section(cpu_count=4)
    current = _report()
    current["parallel"] = _parallel_section(scale=0.4, cpu_count=4)
    proc = _run_check(tmp_path, current, baseline)
    assert proc.returncode == 1
    assert "parallel.workers.1.garble.gates_per_s" in proc.stdout


def test_check_regression_skips_parallel_on_core_count_mismatch(tmp_path):
    """The single-core honesty guard: a curve recorded on a 1-core host
    must not trip false regressions against a multi-core run -- it is
    skipped with a printed notice instead."""
    baseline = _report()
    baseline["parallel"] = _parallel_section(cpu_count=1)
    current = _report()
    current["parallel"] = _parallel_section(scale=0.3, cpu_count=8)
    proc = _run_check(tmp_path, current, baseline)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "notice: skipping parallel worker-scaling comparison" in proc.stdout
    assert "cpu_count=1" in proc.stdout and "cpu_count=8" in proc.stdout
    # The non-parallel lanes are still enforced on the same run.
    current_regressed = _report(scale=0.5)
    current_regressed["parallel"] = _parallel_section(scale=0.3, cpu_count=8)
    proc = _run_check(tmp_path, current_regressed, baseline)
    assert proc.returncode == 1
    assert "parallel.workers" not in proc.stdout


def test_check_regression_fails_when_current_drops_parallel_section(tmp_path):
    """A missing section is a dropped lane (failure), not a host
    mismatch (notice) -- silently losing the curve is how regressions
    hide."""
    baseline = _report()
    baseline["parallel"] = _parallel_section(cpu_count=2)
    proc = _run_check(tmp_path, _report(), baseline)
    assert proc.returncode == 1
    assert "worker-scaling section missing" in proc.stdout


def test_check_regression_missing_files(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(CHECK_SCRIPT), str(tmp_path / "nope.json")],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=60,
    )
    assert proc.returncode == 2


def test_committed_baseline_is_valid():
    """benchmarks/BENCH_baseline.json stays parseable with tracked metrics."""
    baseline = json.loads((ROOT / "benchmarks" / "BENCH_baseline.json").read_text())
    assert baseline["schema"] == "repro.bench_throughput/v1"
    assert baseline["backends"]
    assert baseline["sim"]["models"]
    sys.path.insert(0, str(ROOT / "scripts"))
    try:
        from check_bench_regression import tracked_metrics
    finally:
        sys.path.pop(0)
    metrics = tracked_metrics(baseline)
    assert len(metrics) >= 6
    assert "sim.batched_grid.scenarios_per_s" in metrics
    assert all(value > 0 for value in metrics.values())
