"""Integer arithmetic circuits (little-endian bit-vectors).

These use the GC-optimised constructions the paper's EMP frontend uses:

* full adder with **one** AND gate:  ``s = a xor b xor c``,
  ``c' = c xor ((a xor c) and (b xor c))`` -- so n-bit addition costs nT;
* subtraction as add-with-inverted-operand and carry-in 1;
* comparison via the sign of a subtraction;
* multiplication as the schoolbook AND-array plus an adder tree.

All results are little-endian wire lists.  Widths follow two's-complement
conventions; helpers to encode/decode plaintext integers live next to
each workload's reference implementation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..builder import CircuitBuilder
from .logic import mux, shift_left_const

__all__ = [
    "full_adder",
    "add",
    "add_with_carry",
    "kogge_stone_add",
    "sub",
    "negate",
    "increment",
    "less_than",
    "less_than_signed",
    "greater_than",
    "min_max",
    "mul",
    "mul_full",
    "square",
    "abs_value",
    "divmod_unsigned",
    "encode_int",
    "decode_int",
    "decode_signed",
]


def full_adder(b: CircuitBuilder, a: int, x: int, carry: int) -> Tuple[int, int]:
    """One-bit full adder costing a single garbled table.

    Returns (sum, carry_out) using the standard GC trick:
    ``carry_out = majority(a, x, carry) = carry xor ((a xor carry) and
    (x xor carry))``.
    """
    axc = b.XOR(a, carry)
    xxc = b.XOR(x, carry)
    total = b.XOR(axc, x)
    carry_out = b.XOR(carry, b.AND(axc, xxc))
    return total, carry_out


def add_with_carry(
    b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int], carry_in: int
) -> Tuple[List[int], int]:
    """Ripple-carry addition; returns (sum bits, carry out).  nT."""
    if len(xs) != len(ys):
        raise ValueError("addition operands must have equal width")
    carry = carry_in
    out: List[int] = []
    for a, y in zip(xs, ys):
        total, carry = full_adder(b, a, y, carry)
        out.append(total)
    return out, carry


def add(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
    """Modular (wrap-around) addition, width-preserving.  (n-1)T.

    The final carry is dropped, so the last bit needs only XORs.
    """
    if len(xs) != len(ys):
        raise ValueError("addition operands must have equal width")
    if not xs:
        return []
    carry = b.const_zero()
    out: List[int] = []
    for index, (a, y) in enumerate(zip(xs, ys)):
        if index == len(xs) - 1:
            out.append(b.XOR(b.XOR(a, y), carry))
        else:
            total, carry = full_adder(b, a, y, carry)
            out.append(total)
    return out


def kogge_stone_add(
    b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]
) -> List[int]:
    """Kogge-Stone (parallel-prefix) addition: O(log n) depth.

    The ripple adder of :func:`add` costs one table per bit but has
    depth n; Kogge-Stone spends ~2n*log2(n) tables to reach depth
    O(log n).  On HAAC this is a genuine trade: more Half-Gate work but
    far more ILP for the GEs -- the adder-style ablation benchmark
    quantifies it.

    The prefix combine on (generate, propagate) pairs is
    ``(g, p) o (g', p') = (g xor (p and g'), p and p')``; the XOR is
    legal because ``g`` and ``p`` are mutually exclusive.
    """
    if len(xs) != len(ys):
        raise ValueError("addition operands must have equal width")
    width = len(xs)
    if width == 0:
        return []
    generate = [b.AND(x, y) for x, y in zip(xs, ys)]
    propagate = [b.XOR(x, y) for x, y in zip(xs, ys)]
    prefix_g = list(generate)
    prefix_p = list(propagate)
    distance = 1
    while distance < width:
        next_g = list(prefix_g)
        next_p = list(prefix_p)
        for i in range(distance, width):
            next_g[i] = b.XOR(
                prefix_g[i], b.AND(prefix_p[i], prefix_g[i - distance])
            )
            next_p[i] = b.AND(prefix_p[i], prefix_p[i - distance])
        prefix_g, prefix_p = next_g, next_p
        distance *= 2
    # carry into bit i is prefix_g[i-1]; sum = p xor carry_in.
    out = [propagate[0]]
    for i in range(1, width):
        out.append(b.XOR(propagate[i], prefix_g[i - 1]))
    return out


def sub(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
    """Modular subtraction ``xs - ys`` via two's complement.  (n-1)T."""
    if len(xs) != len(ys):
        raise ValueError("subtraction operands must have equal width")
    if not xs:
        return []
    carry = b.const_one()
    out: List[int] = []
    for index, (a, y) in enumerate(zip(xs, ys)):
        ny = b.NOT(y)
        if index == len(xs) - 1:
            out.append(b.XOR(b.XOR(a, ny), carry))
        else:
            total, carry = full_adder(b, a, ny, carry)
            out.append(total)
    return out


def negate(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    """Two's-complement negation: NOT then +1.  (n-1)T."""
    zero = [b.const_zero()] * len(xs)
    return sub(b, zero, xs)


def increment(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    """Add one (ripple of half-adders), (n-1)T worst case."""
    carry = b.const_one()
    out: List[int] = []
    for index, a in enumerate(xs):
        if index == len(xs) - 1:
            out.append(b.XOR(a, carry))
        else:
            out.append(b.XOR(a, carry))
            carry = b.AND(a, carry)
    return out


def _borrow_out(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Carry-out of xs + NOT(ys) + 1; equals NOT(borrow) of xs - ys."""
    carry = b.const_one()
    for a, y in zip(xs, ys):
        ny = b.NOT(y)
        axc = b.XOR(a, carry)
        yxc = b.XOR(ny, carry)
        carry = b.XOR(carry, b.AND(axc, yxc))
    return carry


def less_than(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Unsigned ``xs < ys``: the borrow of the subtraction.  nT."""
    if len(xs) != len(ys):
        raise ValueError("comparison operands must have equal width")
    return b.NOT(_borrow_out(b, xs, ys))


def less_than_signed(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Signed ``xs < ys``: flip both sign bits then compare unsigned."""
    if len(xs) != len(ys):
        raise ValueError("comparison operands must have equal width")
    if not xs:
        raise ValueError("comparison needs at least one bit")
    fx = list(xs[:-1]) + [b.NOT(xs[-1])]
    fy = list(ys[:-1]) + [b.NOT(ys[-1])]
    return less_than(b, fx, fy)


def greater_than(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Unsigned ``xs > ys``."""
    return less_than(b, ys, xs)


def min_max(
    b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int], signed: bool = False
) -> Tuple[List[int], List[int]]:
    """Compare-exchange returning (min, max) -- the Bubble-Sort kernel.

    Costs n (compare) + 2n (two muxes) tables.
    """
    swap = less_than_signed(b, ys, xs) if signed else less_than(b, ys, xs)
    lo = mux(b, swap, xs, ys)
    hi = mux(b, swap, ys, xs)
    return lo, hi


def mul_full(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
    """Schoolbook multiply returning the full 2n-bit (or n+m) product.

    n*m T for the partial-product AND array plus ~n*m T for the adds.
    """
    if not xs or not ys:
        raise ValueError("multiplication needs non-empty operands")
    width = len(xs) + len(ys)
    zero = b.const_zero()
    acc: List[int] = [zero] * width
    for i, y_bit in enumerate(ys):
        partial = [b.AND(x, y_bit) for x in xs]
        padded = [zero] * i + partial + [zero] * (width - i - len(xs))
        acc = add(b, acc, padded)
    return acc


def mul(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
    """Width-preserving (modular) multiply: low n bits of the product.

    Partial products above bit n-1 are discarded before adding, saving
    roughly half the adder tables relative to :func:`mul_full`.
    """
    if len(xs) != len(ys):
        raise ValueError("mul operands must have equal width")
    width = len(xs)
    zero = b.const_zero()
    acc: List[int] = [zero] * width
    for i, y_bit in enumerate(ys):
        partial = [b.AND(xs[j], y_bit) for j in range(width - i)]
        acc = add(b, acc, shift_left_const(b, partial + [zero] * i, i))
    return acc


def square(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    """Full-width square (2n bits)."""
    return mul_full(b, xs, xs)


def abs_value(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    """Two's-complement absolute value: mux(sign, x, -x)."""
    return mux(b, xs[-1], xs, negate(b, xs))


def divmod_unsigned(
    b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Restoring division: returns (quotient, remainder), both n bits.

    Classic bit-serial restoring division: ~2n^2 tables in an n^2-deep
    dependence chain -- the deepest primitive in the stdlib, useful for
    stressing HAAC's low-ILP behaviour.  Division by zero yields
    quotient of all ones and remainder = dividend (the hardware
    convention of the non-restoring units EMP wraps).
    """
    if len(xs) != len(ys):
        raise ValueError("division operands must have equal width")
    width = len(xs)
    zero = b.const_zero()
    remainder: List[int] = [zero] * width
    quotient: List[int] = [zero] * width
    for i in range(width - 1, -1, -1):
        # remainder = (remainder << 1) | dividend_bit_i
        remainder = [xs[i]] + remainder[:-1]
        # Trial subtract; keep it if it does not borrow.
        fits = b.NOT(less_than(b, remainder, ys))
        trial = sub(b, remainder, ys)
        remainder = mux(b, fits, remainder, trial)
        quotient[i] = fits
    # Divide-by-zero: fits is never set for ys == 0... actually with
    # ys == 0 every trial "fits" (remainder >= 0 always), giving
    # quotient all-ones and remainder = remainder - 0 = dividend bits,
    # which matches the documented convention without extra gates.
    return quotient, remainder


# ---------------------------------------------------------------------------
# Plaintext encode/decode helpers (used by workloads, tests, examples)
# ---------------------------------------------------------------------------


def encode_int(value: int, width: int) -> List[int]:
    """Two's-complement little-endian bits of ``value``."""
    if width <= 0:
        raise ValueError("width must be positive")
    mask = (1 << width) - 1
    value &= mask
    return [(value >> i) & 1 for i in range(width)]


def decode_int(bits: Sequence[int]) -> int:
    """Unsigned value of little-endian bits."""
    return sum(bit << i for i, bit in enumerate(bits))


def decode_signed(bits: Sequence[int]) -> int:
    """Two's-complement value of little-endian bits."""
    value = decode_int(bits)
    if bits and bits[-1]:
        value -= 1 << len(bits)
    return value
