"""Out-of-process supervised sessions: correctness and supervision.

The supervisor tree under test: party workers in their own OS
processes over a kernel socketpair, with the parent enforcing
heartbeat liveness, wall-clock deadlines, bounded retry budgets
(re-verified bit-identical against a fault-free reference digest) and
graceful drain -- all without ever leaking a child process.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.faults import (
    ServiceSaturated,
    SessionAborted,
    SessionDeadlineExceeded,
)
from repro.gc.protocol import TwoPartySession
from repro.serve import (
    SessionSpec,
    Supervisor,
    SupervisorLog,
    draw_chaos,
)

pytestmark = pytest.mark.timeout(120)


def _bits(circuit):
    garbler = [(i ^ 1) & 1 for i in range(circuit.n_garbler_inputs)]
    evaluator = [i & 1 for i in range(circuit.n_evaluator_inputs)]
    return garbler, evaluator


def _solo(circuit, seed=7):
    g, e = _bits(circuit)
    return TwoPartySession(circuit, seed=seed).run_streamed(g, e)


def _assert_reaped():
    """Zero zombies: the supervisor's reap contract."""
    # join any exited-but-unreaped children, then require none alive.
    leftovers = multiprocessing.active_children()
    assert not [p for p in leftovers if p.is_alive()], leftovers


class TestProcessSession:
    def test_bit_identical_to_solo(self, adder_circuit):
        solo = _solo(adder_circuit)
        g, e = _bits(adder_circuit)
        supervisor = Supervisor(deadline_s=60.0, retries=0)
        handle = supervisor.submit(SessionSpec(
            adder_circuit, g, e, seed=7,
            reference_digest=solo.transcript_digest,
        ))
        supervisor.run_until_complete()
        assert handle.error is None
        result = handle.result
        assert result.output_bits == solo.output_bits
        assert result.transcript_digest == solo.transcript_digest
        # The split-process transcript is the same bytes: per-message
        # traffic accounting agrees exactly with the fused solo drive.
        assert result.total_bytes == solo.total_bytes
        assert result.traffic == solo.traffic
        assert result.streamed_levels == solo.streamed_levels
        assert handle.stats.attempts == 1
        _assert_reaped()

    def test_concurrent_process_sessions(self, adder_circuit):
        solo = _solo(adder_circuit)
        g, e = _bits(adder_circuit)
        supervisor = Supervisor(
            max_concurrent=3, max_pending=8, deadline_s=60.0
        )
        handles = [
            supervisor.submit(SessionSpec(
                adder_circuit, g, e, seed=7, session_id=f"c{i}",
                reference_digest=solo.transcript_digest,
            ))
            for i in range(5)
        ]
        stats = supervisor.run_until_complete()
        for handle in handles:
            assert handle.error is None, handle.error
            assert handle.result.output_bits == solo.output_bits
            assert handle.result.transcript_digest == solo.transcript_digest
        summary = stats.summary()
        assert summary["completed"] == 5
        assert summary["retries"] == 0
        assert summary["drain"] is None
        _assert_reaped()

    def test_admission_control_and_retry_hint(self, tiny_circuit):
        g, e = _bits(tiny_circuit)
        supervisor = Supervisor(
            max_concurrent=1, max_pending=1, deadline_s=60.0
        )
        supervisor.submit(SessionSpec(tiny_circuit, g, e, seed=7))
        supervisor.submit(SessionSpec(tiny_circuit, g, e, seed=7))
        # No completion history yet: saturated, but no honest hint.
        with pytest.raises(ServiceSaturated) as excinfo:
            supervisor.submit(SessionSpec(tiny_circuit, g, e, seed=7))
        assert excinfo.value.retry_after_hint_s is None
        supervisor.run_until_complete()

        # With history, a saturated submit carries a positive hint.
        supervisor2 = Supervisor(
            max_concurrent=1, max_pending=0, deadline_s=60.0
        )
        supervisor2.submit(SessionSpec(tiny_circuit, g, e, seed=7))
        supervisor2.run_until_complete()
        supervisor2.submit(SessionSpec(tiny_circuit, g, e, seed=7))
        with pytest.raises(ServiceSaturated) as excinfo:
            supervisor2.submit(SessionSpec(tiny_circuit, g, e, seed=7))
        assert excinfo.value.retry_after_hint_s is not None
        assert excinfo.value.retry_after_hint_s > 0
        supervisor2.run_until_complete()
        _assert_reaped()

    def test_deadline_kills_and_seals_typed(self, adder_circuit):
        g, e = _bits(adder_circuit)
        # A deadline far below any real session time: the watchdog must
        # kill both workers and seal with the typed deadline fault.
        supervisor = Supervisor(
            deadline_s=0.001, retries=0, heartbeat_timeout_s=60.0
        )
        handle = supervisor.submit(SessionSpec(adder_circuit, g, e, seed=7))
        t0 = time.perf_counter()
        supervisor.run_until_complete()
        elapsed = time.perf_counter() - t0
        assert isinstance(handle.error, SessionDeadlineExceeded)
        assert elapsed < 30.0  # killed promptly, not hung
        _assert_reaped()

    def test_retry_recovers_and_reverifies(self, adder_circuit):
        solo = _solo(adder_circuit)
        g, e = _bits(adder_circuit)
        levels_total = len(list(adder_circuit.and_level_schedule()))

        # Seed-hunt a kill_party schedule that hits attempt 1 and
        # misses attempt 2, using the supervisor's own draw order.
        from repro.faults import parse_fault_spec

        seed = next(
            s for s in range(500)
            if (
                lambda plan: (
                    draw_chaos(plan, levels_total, site="x#a1") is not None
                    and draw_chaos(plan, levels_total, site="x#a2") is None
                )
            )(parse_fault_spec(f"kill_party:0.5,seed={s}"))
        )
        supervisor = Supervisor(
            deadline_s=60.0, retries=2, backoff_base_s=0.01
        )
        handle = supervisor.submit(SessionSpec(
            adder_circuit, g, e, seed=7,
            faults=f"kill_party:0.5,seed={seed}",
            reference_digest=solo.transcript_digest,
        ))
        stats = supervisor.run_until_complete()
        assert handle.error is None, handle.error
        assert handle.stats.attempts == 2
        assert handle.result.output_bits == solo.output_bits
        assert handle.result.transcript_digest == solo.transcript_digest
        assert stats.retries == 1
        assert stats.worker_restarts == 2
        assert stats.summary()["retries"] == 1
        _assert_reaped()

    def test_retry_budget_exhausts_to_typed_fault(self, adder_circuit):
        g, e = _bits(adder_circuit)
        supervisor = Supervisor(
            deadline_s=60.0, retries=1, backoff_base_s=0.01
        )
        handle = supervisor.submit(SessionSpec(
            adder_circuit, g, e, seed=7, faults="kill_party,seed=3"
        ))
        stats = supervisor.run_until_complete()
        assert handle.error is not None
        assert handle.stats.attempts == 2  # original + one retry
        assert stats.retries == 1
        _assert_reaped()

    def test_drain_finishes_in_flight_cancels_pending(self, adder_circuit):
        solo = _solo(adder_circuit)
        g, e = _bits(adder_circuit)
        supervisor = Supervisor(
            max_concurrent=1, max_pending=8, deadline_s=60.0,
            drain_timeout_s=30.0,
        )
        handles = [
            supervisor.submit(SessionSpec(
                adder_circuit, g, e, seed=7, session_id=f"d{i}"
            ))
            for i in range(4)
        ]
        timer = threading.Timer(0.05, supervisor.request_drain)
        timer.start()
        try:
            stats = supervisor.run_until_complete()
        finally:
            timer.cancel()
        drain = stats.drain
        assert drain is not None and drain["requested"]
        assert drain["clean"]
        assert drain["killed_in_flight"] == 0
        # In-flight work finished bit-identical; the queue was cancelled
        # with a typed error, and admissions are closed afterwards.
        finished = [h for h in handles if h.error is None]
        cancelled = [h for h in handles if h.error is not None]
        assert finished and cancelled
        assert len(finished) + len(cancelled) == 4
        for handle in finished:
            assert handle.result.output_bits == solo.output_bits
        for handle in cancelled:
            assert isinstance(handle.error, SessionAborted)
        with pytest.raises(ServiceSaturated):
            supervisor.submit(SessionSpec(adder_circuit, g, e, seed=7))
        _assert_reaped()

    def test_supervisor_log_records_lifecycle(self, tiny_circuit, tmp_path):
        g, e = _bits(tiny_circuit)
        log_path = tmp_path / "events.jsonl"
        supervisor = Supervisor(
            deadline_s=60.0, log=SupervisorLog(str(log_path))
        )
        supervisor.submit(SessionSpec(tiny_circuit, g, e, seed=7))
        supervisor.run_until_complete()
        kinds = [event["event"] for event in supervisor.log.events]
        assert "submitted" in kinds
        assert "launched" in kinds
        assert "sealed" in kinds
        assert "run_finished" in kinds
        # The JSONL mirror exists and parses line-by-line.
        import json

        lines = log_path.read_text().strip().splitlines()
        assert len(lines) == len(supervisor.log.events)
        assert all(json.loads(line)["event"] for line in lines)


class TestServeCliProcessTransport:
    def test_process_transport_healthy(self, capsys):
        from repro.cli import main

        code = main([
            "serve", "--sessions", "2", "--width", "8",
            "--transport", "process", "--concurrency", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "process wire" in out
        assert "supervision:" in out
        _assert_reaped()

    def test_faulted_session_exits_nonzero(self, capsys):
        from repro.cli import main

        code = main([
            "serve", "--sessions", "2", "--width", "8",
            "--transport", "process", "--retries", "0",
            "--faults", "kill_party,seed=1",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "sealed with errors" in captured.err
        _assert_reaped()

    def test_faulted_memory_session_exits_nonzero(self, capsys):
        # Satellite contract: *any* session sealing with an error makes
        # `repro serve` exit nonzero, on every transport -- injected
        # faults included.
        from repro.cli import main

        code = main([
            "serve", "--sessions", "2", "--width", "8",
            "--faults", "drop:1.0,seed=2",
        ])
        assert code == 2
