"""Scenario-grid analysis: loader, summary round trip, rendering, CLI."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import scenarios as sc
from repro.cli import main

FIXTURE = pathlib.Path(__file__).parent / "data" / "BENCH_scenarios_fixture.json"


@pytest.fixture
def report():
    return sc.load_report(FIXTURE)


class TestLoader:
    def test_fixture_loads(self, report):
        assert set(report["workloads"]) == {"ReLU", "Hamm"}

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "repro.bench_throughput/v1"}))
        with pytest.raises(ValueError, match="not a scenario-grid artifact"):
            sc.load_report(path)

    def test_rejects_missing_workloads(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps(
            {"schema": "repro.bench_scenarios/v2", "workloads": {}}
        ))
        with pytest.raises(ValueError, match="no workload sections"):
            sc.load_report(path)

    def test_v1_artifact_gets_derived_summary(self, tmp_path):
        """Pre-summary (v1) artifacts load with an equivalent derived
        summary block -- the round trip the persisted block replaces."""
        data = json.loads(FIXTURE.read_text())
        data["schema"] = "repro.bench_scenarios/v1"
        persisted = {}
        for name, section in data["workloads"].items():
            persisted[name] = section.pop("summary")
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(data))
        loaded = sc.load_report(path)
        for name, section in loaded["workloads"].items():
            assert section["summary"] == persisted[name]

    def test_summary_round_trips_with_sweeps(self, report):
        """The persisted summary agrees with re-deriving it from the
        sweeps it summarises."""
        for section in report["workloads"].values():
            derived = sc.summarize_sweeps(
                section["queue_sweep"], section["bandwidth_sweep"],
                section["summary"]["scenarios"],
            )
            assert derived == section["summary"]


class TestRendering:
    def test_summary_table_reached_and_not_reached(self, report):
        table = sc.summary_table(report)
        assert "1024B/GE" in table
        assert "512 GB/s" in table
        assert table.count("not reached in sweep") == 2  # Hamm knee + flip
        assert "2.6x" in table and "2.9x" in table

    def test_queue_chart_labels(self, report):
        chart = sc.queue_chart("ReLU", report["workloads"]["ReLU"])
        assert "64B" in chart and "65536B" in chart
        assert "queue bytes/GE" in chart

    def test_bandwidth_chart_marks_memory_bound(self, report):
        chart = sc.bandwidth_chart("ReLU", report["workloads"]["ReLU"])
        assert "8.8GB/s*" in chart
        assert "512GB/s " in chart or "512GB/s |" in chart  # not starred

    def test_render_report_full(self, report):
        text = sc.render_report(report, source="fixture.json")
        assert "scenario grid (repro.bench_scenarios/v2, engine=numpy)" in text
        assert "from fixture.json" in text
        assert "Scenario grid: queue-SRAM knee" in text
        for name in ("ReLU", "Hamm"):
            assert f"{name}: coupled slowdown" in text
            assert f"{name}: decoupled runtime cycles" in text

    def test_render_report_subset_and_unknown(self, report):
        text = sc.render_report(report, workloads=["Hamm"])
        assert "Hamm: coupled slowdown" in text
        assert "ReLU: coupled slowdown" not in text
        with pytest.raises(KeyError, match="NotAThing"):
            sc.render_report(report, workloads=["NotAThing"])


class TestCli:
    def test_scenarios_command(self, capsys):
        assert main(["scenarios", str(FIXTURE)]) == 0
        out = capsys.readouterr().out
        assert "Scenario grid: queue-SRAM knee" in out
        assert "not reached in sweep" in out

    def test_scenarios_subset(self, capsys):
        assert main(["scenarios", str(FIXTURE), "--workloads", "ReLU"]) == 0
        out = capsys.readouterr().out
        assert "ReLU: coupled slowdown" in out
        assert "Hamm: coupled slowdown" not in out

    def test_scenarios_unknown_workload(self, capsys):
        assert main(["scenarios", str(FIXTURE), "--workloads", "Nope"]) == 2
        assert "Nope" in capsys.readouterr().err

    def test_scenarios_missing_file(self, tmp_path, capsys):
        assert main(["scenarios", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err

    def test_scenarios_bad_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        assert main(["scenarios", str(path)]) == 2
        assert "not a scenario-grid artifact" in capsys.readouterr().err

    def test_scenarios_default_path_resolution(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH_scenarios.json").write_text(FIXTURE.read_text())
        assert main(["scenarios"]) == 0
        assert "Scenario grid" in capsys.readouterr().out
