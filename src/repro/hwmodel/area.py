"""Chip area model (paper Table 4).

Component areas are anchored to the paper's post-layout 16 nm numbers
for the 16 GE / 2 MB SWW / 64-bank design and parameterised by design
point:

* Half-Gate and FreeXOR units scale linearly with GE count;
* the forwarding network spans all GEs (all-to-all wire matching), so it
  scales with GE pairs, normalised to the paper's 16 GE figure;
* the crossbar connects GEs to SWW banks and scales with ports x banks;
* SRAM macros (SWW, queues) scale linearly with capacity;
* the HBM2 PHY is a fixed IP block, reported separately exactly as the
  paper does ("we focus on reporting HAAC IP area").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.config import HaacConfig
from .technology import TSMC_16, TechNode

__all__ = ["AreaBreakdown", "area_model", "PAPER_AREA_MM2"]

# Paper Table 4, 16 nm, 16 GEs / 2 MB SWW (64 banks) / 64 KB queues.
PAPER_AREA_MM2: Dict[str, float] = {
    "halfgate": 2.15,
    "freexor": 9.51e-4,
    "fwd": 1.80e-3,
    "crossbar": 7.27e-2,
    "sww_sram": 1.94,
    "queues_sram": 0.173,
    "total_haac": 4.33,
    "hbm2_phy": 14.9,
}

_REF_GES = 16
_REF_SWW_BYTES = 2 * 1024 * 1024
_REF_BANKS = 64
_REF_QUEUE_BYTES = 64 * 1024


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas in mm^2 for one design point."""

    halfgate: float
    freexor: float
    fwd: float
    crossbar: float
    sww_sram: float
    queues_sram: float
    hbm2_phy: float

    @property
    def total_haac(self) -> float:
        """HAAC IP area (PHY excluded, as in the paper's headline 4.3 mm^2)."""
        return (
            self.halfgate
            + self.freexor
            + self.fwd
            + self.crossbar
            + self.sww_sram
            + self.queues_sram
        )

    @property
    def total_with_phy(self) -> float:
        return self.total_haac + self.hbm2_phy

    def as_dict(self) -> Dict[str, float]:
        return {
            "halfgate": self.halfgate,
            "freexor": self.freexor,
            "fwd": self.fwd,
            "crossbar": self.crossbar,
            "sww_sram": self.sww_sram,
            "queues_sram": self.queues_sram,
            "total_haac": self.total_haac,
            "hbm2_phy": self.hbm2_phy,
        }


def area_model(config: HaacConfig, node: TechNode = TSMC_16) -> AreaBreakdown:
    """Area of ``config`` anchored to the paper's reference design."""
    ge_ratio = config.n_ges / _REF_GES
    factor = node.area_factor
    return AreaBreakdown(
        halfgate=PAPER_AREA_MM2["halfgate"] * ge_ratio * factor,
        freexor=PAPER_AREA_MM2["freexor"] * ge_ratio * factor,
        # All-to-all forwarding comparators grow with GE pairs.
        fwd=PAPER_AREA_MM2["fwd"] * (config.n_ges**2 / _REF_GES**2) * factor,
        crossbar=PAPER_AREA_MM2["crossbar"]
        * (config.n_ges * config.n_banks) / (_REF_GES * _REF_BANKS)
        * factor,
        sww_sram=PAPER_AREA_MM2["sww_sram"]
        * (config.sww_bytes / _REF_SWW_BYTES)
        * factor,
        queues_sram=PAPER_AREA_MM2["queues_sram"]
        * (config.queue_sram_bytes / _REF_QUEUE_BYTES)
        * factor,
        hbm2_phy=PAPER_AREA_MM2["hbm2_phy"],  # fixed IP, node-independent here
    )
