"""One shared dependence-graph IR for the compiler and the sim engines.

Before this module, four consumers re-derived overlapping dependence
structure from the same netlist on every cold compile: the reorder
passes re-ran :meth:`Circuit.gate_levels`, ESW re-walked every gate's
operands, the greedy GE mapping iterated gate dataclasses, and the
multicore partitioner ran its own union-find.  :class:`DepGraph` is the
single flat-array home for all of it (DESIGN.md section 14):

* **operand arrays** ``a_of`` / ``b_of`` / ``out_of`` / ``is_and`` --
  one attribute walk over the gate dataclasses, ever;
* **reader adjacency** -- CSR (``reader_off`` / ``reader_pos``) built by
  counting sort, so per-wire reader lists are ascending program
  positions and ``last_reader`` is one gather;
* **topological levels** -- the netlist's ASAP wire/gate levels (these
  are per-*wire-id* and therefore permutation-invariant: the reorder
  passes share one computation across the pipeline);
* **union-find components** -- connected components in first-seen
  (topological) order, exactly the multicore partitioner's contract;
* **window-sync edges** -- both directions of the tagless-SWW hazards:
  the PR-5 WAW rule (an evicting write orders after the evicted slot's
  *producer*, readers or not) and the OoR reader-after-evictor floor.
  They live in :func:`engine_levels`, the schedule-aware level
  partition that ``CompiledArrays.ensure_levels`` now projects, and in
  the greedy scheduler's ``last_read_issue`` bookkeeping -- one
  definition, asserted bit-identical by the equivalence suite.

Graph construction *is* validation: the eager pass checks the same IR
invariants as :meth:`Circuit.validate` (dense ids, SSA, topological
order) on flat integers, so a pass that builds or receives a graph can
skip a redundant ``validate()`` of the same netlist.

Memoization is two-level: on the circuit instance (attribute
``_depgraph_cache``, dropped on pickle like every other netlist memo)
and in a small digest-keyed registry so rebuilt-but-equal circuits --
a multicore sweep re-calling :func:`partition_components`, or two opt
levels sharing one lowered circuit -- reuse the graph and everything
lazily derived on it.  The renamed program's graph additionally rides
along on the :class:`StreamSet` into the persistent program cache
(CACHE_SCHEMA v4), sharing its operand lists with the engine's
``CompiledArrays`` so warm entries store one copy.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..circuits.netlist import Circuit, CircuitError, GateOp

__all__ = [
    "DepGraph",
    "dep_graph",
    "engine_levels",
    "build_counts",
    "clear_registry",
    "seed_graph",
]

#: Instance-memo attribute on Circuit (listed in Circuit._MEMO_ATTRS so
#: pickled netlists never carry a graph; StreamSet persists it instead).
GRAPH_ATTR = "_depgraph_cache"

#: Digest-keyed graphs surviving across rebuilt Circuit instances.
#: Bounded FIFO: 64 graphs cover any realistic sweep's working set.
_REGISTRY_MAX = 64
_registry: "Dict[str, DepGraph]" = {}
_registry_lock = threading.Lock()

#: Work-actually-done counters (not cache hits) -- the warm-path tests
#: and the bench's cold-compile honesty both read these.
_counts = {"graphs": 0, "levels": 0, "readers": 0, "components": 0}


def build_counts() -> Dict[str, int]:
    """Snapshot of how many times each derivation actually ran."""
    return dict(_counts)


def clear_registry() -> None:
    """Drop all digest-keyed graphs (cold-path benchmarking, tests)."""
    with _registry_lock:
        _registry.clear()


class DepGraph:
    """Immutable flat-array dependence graph of one :class:`Circuit`.

    Eager fields are one pass over the gate list; everything else is
    derived lazily, once, and memoized on the graph.  All fields are
    plain Python lists (the same NumPy-less-pickle portability contract
    as ``CompiledArrays``; the NumPy engine wraps them on demand).
    """

    __slots__ = (
        "n_inputs",
        "n_gates",
        "n_wires",
        "a_of",
        "b_of",
        "out_of",
        "is_and",
        "renamed",
        "_wire_level",
        "_gate_level",
        "_reader_off",
        "_reader_pos",
        "_last_reader",
        "_component_of",
        "_components",
        "_oor_flags",
    )

    def __init__(self, circuit: Circuit):
        gates = circuit.gates
        n_inputs = circuit.n_inputs
        n_gates = len(gates)
        n_wires = n_inputs + n_gates
        a_of = [gate.a for gate in gates]
        b_of = [gate.b for gate in gates]
        out_of = [gate.out for gate in gates]
        is_and = [gate.op is GateOp.AND for gate in gates]

        # Validation witness: the same invariants as Circuit.validate(),
        # checked on flat integers (no per-gate generators).
        defined = bytearray(n_wires)
        for wire in range(min(n_inputs, n_wires)):
            defined[wire] = 1
        renamed = True
        for position in range(n_gates):
            a = a_of[position]
            b = b_of[position]
            out = out_of[position]
            if a >= n_wires or (b >= 0 and b >= n_wires) or out >= n_wires:
                raise CircuitError(
                    f"gate {position} touches a wire >= n_wires {n_wires}"
                )
            if not defined[a] or (b >= 0 and not defined[b]):
                raise CircuitError(
                    f"gate {position} reads a wire before it is defined"
                )
            if out < n_inputs:
                raise CircuitError(
                    f"gate {position} overwrites input wire {out}"
                )
            if defined[out]:
                raise CircuitError(
                    f"wire {out} defined twice (SSA violation)"
                )
            defined[out] = 1
            if out != n_inputs + position:
                renamed = False
        for wire in circuit.outputs:
            if wire >= n_wires or not defined[wire]:
                raise CircuitError(f"output wire {wire} is undefined")

        self.n_inputs = n_inputs
        self.n_gates = n_gates
        self.n_wires = n_wires
        self.a_of = a_of
        self.b_of = b_of
        self.out_of = out_of
        self.is_and = is_and
        self.renamed = renamed
        self._wire_level: Optional[List[int]] = None
        self._gate_level: Optional[List[int]] = None
        self._reader_off: Optional[List[int]] = None
        self._reader_pos: Optional[List[int]] = None
        self._last_reader: Optional[List[int]] = None
        self._component_of: Optional[List[int]] = None
        self._components: Optional[List[List[int]]] = None
        self._oor_flags: Dict[int, Tuple[List[bool], List[bool]]] = {}
        _counts["graphs"] += 1

    # ------------------------------------------------------------------
    # Topological (ASAP) levels
    # ------------------------------------------------------------------

    @property
    def wire_level(self) -> List[int]:
        """ASAP level per wire id (inputs 0) -- Circuit.wire_levels.

        Per-wire-id, so a gate *permutation* of the same netlist has the
        identical array; the reorder passes exploit that by seeding the
        permuted circuit's graph with the source's levels.
        """
        if self._wire_level is None:
            level = [0] * self.n_wires
            a_of, b_of, out_of = self.a_of, self.b_of, self.out_of
            for position in range(self.n_gates):
                la = level[a_of[position]]
                b = b_of[position]
                if b >= 0:
                    lb = level[b]
                    if lb > la:
                        la = lb
                level[out_of[position]] = la + 1
            self._wire_level = level
            _counts["levels"] += 1
        return self._wire_level

    @property
    def gate_level(self) -> List[int]:
        """ASAP level per gate position, 1-based -- Circuit.gate_levels."""
        if self._gate_level is None:
            level = self.wire_level
            self._gate_level = [level[out] for out in self.out_of]
        return self._gate_level

    # ------------------------------------------------------------------
    # Reader adjacency (CSR) and producers
    # ------------------------------------------------------------------

    def _build_readers(self) -> None:
        """Counting-sort CSR: per-wire reader positions, ascending."""
        n_wires = self.n_wires
        counts = [0] * (n_wires + 1)
        a_of, b_of = self.a_of, self.b_of
        for position in range(self.n_gates):
            counts[a_of[position] + 1] += 1
            b = b_of[position]
            if b >= 0:
                counts[b + 1] += 1
        for wire in range(n_wires):
            counts[wire + 1] += counts[wire]
        offsets = list(counts)
        reader_pos = [0] * counts[n_wires]
        cursor = list(counts[:-1])
        for position in range(self.n_gates):
            a = a_of[position]
            reader_pos[cursor[a]] = position
            cursor[a] += 1
            b = b_of[position]
            if b >= 0:
                reader_pos[cursor[b]] = position
                cursor[b] += 1
        self._reader_off = offsets
        self._reader_pos = reader_pos
        _counts["readers"] += 1

    @property
    def reader_off(self) -> List[int]:
        """CSR offsets: wire ``w``'s readers are
        ``reader_pos[reader_off[w]:reader_off[w + 1]]`` (ascending)."""
        if self._reader_off is None:
            self._build_readers()
        return self._reader_off

    @property
    def reader_pos(self) -> List[int]:
        if self._reader_pos is None:
            self._build_readers()
        return self._reader_pos

    def readers(self, wire: int) -> List[int]:
        """Gate positions reading ``wire``, in program order."""
        off = self.reader_off
        return self.reader_pos[off[wire]:off[wire + 1]]

    @property
    def last_reader(self) -> List[int]:
        """Last gate position reading each wire (-1: never read).

        The ESW liveness rule only needs the *last* reader: consumer
        frontiers ``n_inputs + q`` ascend with ``q``, so a wire is read
        past its eviction frontier iff its last reader is.
        """
        if self._last_reader is None:
            last = [-1] * self.n_wires
            a_of, b_of = self.a_of, self.b_of
            for position in range(self.n_gates):
                last[a_of[position]] = position
                b = b_of[position]
                if b >= 0:
                    last[b] = position
            self._last_reader = last
        return self._last_reader

    def producer_pos(self, wire: int) -> int:
        """Producing gate position of ``wire`` (-1 for primary inputs).

        Renamed circuits answer by arithmetic; general circuits scan the
        ``out_of`` array lazily via a one-shot inverse is unnecessary --
        the only non-renamed consumer (DFS ordering) builds its own
        traversal order, so this stays a simple helper.
        """
        if wire < self.n_inputs:
            return -1
        if self.renamed:
            return wire - self.n_inputs
        # Rare path: invert on demand without memo (callers that need
        # the full inverse use producer_index()).
        return self.producer_index()[wire]

    def producer_index(self) -> List[int]:
        """Full wire -> producing-position inverse (-1 for inputs)."""
        index = [-1] * self.n_wires
        out_of = self.out_of
        for position in range(self.n_gates):
            index[out_of[position]] = position
        return index

    # ------------------------------------------------------------------
    # Union-find components
    # ------------------------------------------------------------------

    def _build_components(self) -> None:
        """Connected components over shared wires, first-seen order.

        Identical contract to the legacy multicore partitioner: a
        path-halving union-find over dense wire ids, then one bucketing
        pass in gate order so component indices follow first appearance
        (topological order).
        """
        parent = list(range(self.n_wires))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        a_of, b_of, out_of = self.a_of, self.b_of, self.out_of
        for position in range(self.n_gates):
            out_root = find(out_of[position])
            a_root = find(a_of[position])
            if a_root != out_root:
                parent[a_root] = out_root
            b = b_of[position]
            if b >= 0:
                b_root = find(b)
                out_root = find(out_of[position])
                if b_root != out_root:
                    parent[b_root] = out_root

        component_of_root = [-1] * self.n_wires
        component_of = [0] * self.n_gates
        components: List[List[int]] = []
        for position in range(self.n_gates):
            root = find(out_of[position])
            index = component_of_root[root]
            if index < 0:
                index = len(components)
                component_of_root[root] = index
                components.append([])
            components[index].append(position)
            component_of[position] = index
        self._component_of = component_of
        self._components = components
        _counts["components"] += 1

    @property
    def components(self) -> List[List[int]]:
        """Gate-position lists per connected component (do not mutate)."""
        if self._components is None:
            self._build_components()
        return self._components

    @property
    def component_of(self) -> List[int]:
        """Component index of each gate position."""
        if self._component_of is None:
            self._build_components()
        return self._component_of

    # ------------------------------------------------------------------
    # Window-sync derived data (renamed form only)
    # ------------------------------------------------------------------

    def _require_renamed(self, what: str) -> None:
        if not self.renamed:
            raise CircuitError(
                f"{what} requires the renamed (sequential-output) form"
            )

    def oor_flags(self, capacity: int) -> Tuple[List[bool], List[bool]]:
        """Per-gate (a, b) out-of-range flags for an SWW of ``capacity``.

        Inlines :meth:`SlidingWindow.is_oor` over the flat arrays:
        operand ``w`` of gate ``p`` is OoR iff
        ``w < max(0, ((n_inputs + p) // half - 1)) * half``.
        """
        self._require_renamed("OoR analysis")
        cached = self._oor_flags.get(capacity)
        if cached is not None:
            return cached
        half = capacity // 2
        n_inputs = self.n_inputs
        a_of, b_of = self.a_of, self.b_of
        oor_a = [False] * self.n_gates
        oor_b = [False] * self.n_gates
        for position in range(self.n_gates):
            start = ((n_inputs + position) // half - 1) * half
            if start > 0:
                if a_of[position] < start:
                    oor_a[position] = True
                if b_of[position] < start:
                    oor_b[position] = True
        flags = (oor_a, oor_b)
        self._oor_flags[capacity] = flags
        return flags

    def engine_levels(
        self, ge_of: List[int], n_ges: int, capacity: int
    ) -> Tuple[List[int], int]:
        """Schedule-aware dependence-level partition (see module doc)."""
        self._require_renamed("the engine level partition")
        return engine_levels(
            self.n_inputs, capacity, self.a_of, self.b_of, ge_of, n_ges
        )

    # ------------------------------------------------------------------
    # Pickle support (persisted on StreamSet through the program cache)
    # ------------------------------------------------------------------

    def __getstate__(self):
        # Keep cache entries lean: persist only the eager arrays (they
        # are shared by reference with CompiledArrays in the same
        # pickle, so the marginal size is near zero) and rebuild the
        # derived memos on demand.  ``out_of`` is implicit in renamed
        # form, which is the only form the program cache ever stores.
        return {
            "n_inputs": self.n_inputs,
            "n_gates": self.n_gates,
            "a_of": self.a_of,
            "b_of": self.b_of,
            "is_and": self.is_and,
            "renamed": self.renamed,
            "out_of": None if self.renamed else self.out_of,
        }

    def __setstate__(self, state):
        self.n_inputs = state["n_inputs"]
        self.n_gates = state["n_gates"]
        self.n_wires = self.n_inputs + self.n_gates
        self.a_of = state["a_of"]
        self.b_of = state["b_of"]
        self.is_and = state["is_and"]
        self.renamed = state["renamed"]
        out_of = state["out_of"]
        if out_of is None:
            n_inputs = self.n_inputs
            out_of = [n_inputs + p for p in range(self.n_gates)]
        self.out_of = out_of
        self._wire_level = None
        self._gate_level = None
        self._reader_off = None
        self._reader_pos = None
        self._last_reader = None
        self._component_of = None
        self._components = None
        self._oor_flags = {}


def engine_levels(
    n_inputs: int,
    capacity: int,
    a_of: List[int],
    b_of: List[int],
    ge_of: List[int],
    n_ges: int,
) -> Tuple[List[int], int]:
    """Dependence-level partition consumed by the NumPy level replay.

    The one definition of every ordering constraint the level-parallel
    engine must respect (``CompiledArrays.ensure_levels`` projects this
    function):

    * **data**: instruction ``p`` reading wire ``w >= n_inputs`` runs
      strictly after producer ``w - n_inputs``;
    * **window-sync WAW** (the PR-5 evictor rule): ``p`` overwrites the
      slot of wire ``n_inputs + p - capacity``, so it runs strictly
      after that wire's *producer* ``p - capacity`` -- readers or not
      (a reader-less wire would otherwise let the evicting write land
      before its lagging producer and be stomped);
    * **window-sync readers**: ``p`` also runs no earlier than every
      reader of the evicted wire (their ``last_read_issue`` must be
      final when ``p`` gathers it); conversely the **OoR
      reader-after-evictor floor** -- a reader ``q > t`` of a wire
      whose slot instruction ``t`` already overwrote (an OoR read
      served by the queue) must not land in an earlier level than
      ``t``, or its ``last_read_issue`` update would become visible to
      ``t``'s gather when the scalar replay never saw it (equal levels
      are fine: gathers read pre-level state);
    * **in-order issue**: same-GE levels are non-decreasing in program
      order (*equal* allowed -- within a level each GE's instructions
      keep program order and chain through a segmented prefix-max).

    One O(instructions) pass; constraints on the (unique) future
    evicting instruction are pushed forward as operands are scanned, so
    no reader lists are materialised.  Returns ``(level_of, n_levels)``.
    """
    n = len(a_of)
    shift = capacity - n_inputs
    level_of = [0] * n
    ge_level = [0] * n_ges
    ws_min = [0] * n
    for p in range(n):
        a = a_of[p]
        b = b_of[p]
        lvl = ws_min[p]
        if a >= n_inputs:
            la = level_of[a - n_inputs] + 1
            if la > lvl:
                lvl = la
        if b >= n_inputs:
            lb = level_of[b - n_inputs] + 1
            if lb > lvl:
                lvl = lb
        ge = ge_of[p]
        if ge_level[ge] > lvl:
            lvl = ge_level[ge]
        # Evictor after the evicted wire's producer (WAW on the slot):
        # p overwrites the slot written by p - capacity.
        tp = p - capacity
        if tp >= 0 and level_of[tp] >= lvl:
            lvl = level_of[tp] + 1
        ta = a + shift
        tb = b + shift
        # Reader after evictor: don't outrun the overwriter's level.
        if 0 <= ta < p and level_of[ta] > lvl:
            lvl = level_of[ta]
        if 0 <= tb < p and level_of[tb] > lvl:
            lvl = level_of[tb]
        level_of[p] = lvl
        ge_level[ge] = lvl
        # Reader before evictor: the future overwriter waits for us.
        if p < ta < n and lvl >= ws_min[ta]:
            ws_min[ta] = lvl + 1
        if p < tb < n and lvl >= ws_min[tb]:
            ws_min[tb] = lvl + 1
    n_levels = (max(level_of) + 1) if n else 0
    return level_of, n_levels


def seed_graph(
    circuit: Circuit, graph: DepGraph, wire_level_from: Optional[DepGraph] = None
) -> DepGraph:
    """Attach a freshly built graph to its circuit's instance memo.

    ``wire_level_from`` transfers the (permutation-invariant) per-wire
    ASAP levels from a source graph over the same wire ids -- the
    reorder passes use it so the whole pipeline levels once.
    """
    if wire_level_from is not None and wire_level_from._wire_level is not None:
        graph._wire_level = wire_level_from._wire_level
    setattr(circuit, GRAPH_ATTR, graph)
    return graph


def dep_graph(circuit: Circuit, use_registry: bool = True) -> DepGraph:
    """The (memoized) dependence graph of ``circuit``.

    Looks up the circuit-instance memo first, then the digest-keyed
    registry (equal circuits share one graph and all its derived data),
    and builds -- which also validates the netlist -- on a full miss.
    """
    cached = getattr(circuit, GRAPH_ATTR, None)
    if cached is not None:
        return cached
    digest = None
    if use_registry:
        from .progcache import circuit_digest

        digest = circuit_digest(circuit)
        with _registry_lock:
            graph = _registry.get(digest)
        if graph is not None:
            setattr(circuit, GRAPH_ATTR, graph)
            return graph
    graph = DepGraph(circuit)
    setattr(circuit, GRAPH_ATTR, graph)
    if digest is not None:
        with _registry_lock:
            if digest not in _registry and len(_registry) >= _REGISTRY_MAX:
                _registry.pop(next(iter(_registry)))
            _registry[digest] = graph
    return graph
