"""HAAC hardware model: config, DRAM, timing and functional simulation."""

from .config import INSTR_BYTES, OOR_ADDR_BYTES, TABLE_BYTES, HaacConfig, Role
from .coupled import (
    CoupledResult,
    coupled_runtime,
    coupled_runtime_batch,
    pull_based_runtime,
)
from .dram import DDR4, HBM2, BandwidthLedger, DramSpec
from .engine import (
    ENGINE_ENV_VAR,
    CompiledArrays,
    compiled_arrays,
    engine_mode,
)
from .functional import FunctionalRun, HaacMachineError, run_functional
from .ge import GePipelineModel
from .multicore import MulticoreResult, partition_components, simulate_multicore
from .pipeline import HaacRun, run_best_reorder, run_haac
from .stats import SimResult, StallBreakdown
from .timing import compute_traffic, simulate, simulate_batch

__all__ = [
    "ENGINE_ENV_VAR",
    "CompiledArrays",
    "compiled_arrays",
    "engine_mode",
    "coupled_runtime",
    "coupled_runtime_batch",
    "pull_based_runtime",
    "CoupledResult",
    "GePipelineModel",
    "simulate_multicore",
    "partition_components",
    "MulticoreResult",
    "HaacConfig",
    "Role",
    "TABLE_BYTES",
    "INSTR_BYTES",
    "OOR_ADDR_BYTES",
    "DramSpec",
    "DDR4",
    "HBM2",
    "BandwidthLedger",
    "simulate",
    "simulate_batch",
    "compute_traffic",
    "SimResult",
    "StallBreakdown",
    "run_functional",
    "FunctionalRun",
    "HaacMachineError",
    "run_haac",
    "run_best_reorder",
    "HaacRun",
]
