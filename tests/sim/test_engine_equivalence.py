"""Cross-model engine equivalence: numpy vs vectorized vs reference.

The contract under test: every timing model (decoupled simulate,
coupled, pull-based, multicore) produces *bit-identical* cycle counts,
stall breakdowns and per-GE issue counts whether it runs on the NumPy
level-parallel engine (the default), the flat-array vectorized loop
(``REPRO_SIM_ENGINE=vectorized``) or the retained per-gate reference
loops (``REPRO_SIM_ENGINE=reference``), across every stdlib circuit
family and every compiler optimization level.  This pins the models
down so future engine refactors cannot silently drift cycle counts.

The fast lane covers all five small stdlib families at every OptLevel;
the exhaustive sweep adds AES-128 (200k gates) and is marked ``slow``.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

import repro.sim.engine as engine_module
from repro.circuits.builder import CircuitBuilder
from repro.circuits.stdlib import fixed, integer, logic
from repro.circuits.stdlib.aes_circuit import build_aes128_circuit
from repro.circuits.stdlib.float import FloatFormat, fp_add
from repro.core.compiler import OptLevel, compile_circuit
from repro.sim.config import HaacConfig
from repro.sim.coupled import coupled_runtime, pull_based_runtime
from repro.sim.engine import (
    ENGINE_ENV_VAR,
    ENGINE_NUMPY,
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    engine_mode,
)
from repro.sim.multicore import simulate_multicore
from repro.sim.timing import simulate
from repro.workloads import get_workload

ALL_ENGINES = (ENGINE_NUMPY, ENGINE_VECTORIZED, ENGINE_REFERENCE)


def _logic8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(logic.popcount(b, logic.bitwise_and(b, xs, ys)))
    b.mark_outputs([logic.equals(b, xs, ys), logic.parity(b, xs)])
    b.mark_outputs(logic.mux(b, logic.any_bit(b, ys), xs, ys))
    return b.build("logic8")


def _adder8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(integer.add(b, xs, ys))
    return b.build("adder8")


def _integer8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(integer.sub(b, xs, ys))
    b.mark_outputs(integer.mul(b, xs, ys))
    b.mark_outputs([integer.less_than(b, xs, ys)])
    return b.build("integer8")


def _fixed8():
    b = CircuitBuilder()
    fmt = fixed.FixedFormat(width=8, fraction_bits=3)
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(fixed.fx_mul(b, fmt, xs, ys))
    return b.build("fixed8")


def _float8():
    b = CircuitBuilder()
    fmt = FloatFormat(exponent_bits=4, mantissa_bits=3)
    xs = b.add_garbler_inputs(fmt.width)
    ys = b.add_evaluator_inputs(fmt.width)
    b.mark_outputs(fp_add(b, fmt, xs, ys))
    return b.build("float8")


STDLIB_FAMILIES = {
    "logic8": _logic8,
    "adder8": _adder8,
    "integer8": _integer8,
    "fixed8": _fixed8,
    "float8": _float8,
}

ALL_OPTS = list(OptLevel)


@lru_cache(maxsize=None)
def _circuit(family: str):
    if family == "aes128":
        return build_aes128_circuit()
    return STDLIB_FAMILIES[family]()


@lru_cache(maxsize=None)
def _compiled(family: str, opt: OptLevel, sww_bytes: int = 64 * 16):
    config = HaacConfig(n_ges=4, sww_bytes=sww_bytes)
    result = compile_circuit(
        _circuit(family), config.window, config.n_ges,
        opt=opt, params=config.schedule_params(),
    )
    return result, config


def _sim_snapshot(streams, config):
    sim = simulate(streams, config)
    return (
        sim.compute_cycles,
        sim.traffic_cycles,
        sim.stalls.as_dict(),
        dict(sim.issued_per_ge),
    )


def _coupled_snapshot(streams, config):
    rows = []
    for queue_bytes in (None, 64, 4096):
        coupled = coupled_runtime(streams, config, queue_bytes)
        rows.append((coupled.cycles, coupled.stall_cycles, coupled.name))
    pull = pull_based_runtime(streams, config)
    rows.append((pull.cycles, pull.stall_cycles, pull.name))
    return rows


def _all_engines(monkeypatch, fn):
    """Run ``fn()`` under each engine; returns one snapshot per engine."""
    snapshots = []
    for engine in ALL_ENGINES:
        monkeypatch.setenv(ENGINE_ENV_VAR, engine)
        snapshots.append(fn())
    return snapshots


def _assert_identical(snapshots):
    for engine, snapshot in zip(ALL_ENGINES[1:], snapshots[1:]):
        assert snapshot == snapshots[0], f"{engine} diverged from numpy"


class TestEngineMode:
    def test_default_is_numpy_when_importable(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert engine_mode() == ENGINE_NUMPY

    def test_default_without_numpy_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        monkeypatch.setattr(engine_module, "_np", None)
        assert engine_mode() == ENGINE_VECTORIZED

    def test_explicit_numpy_without_numpy_falls_back(self, monkeypatch):
        monkeypatch.setattr(engine_module, "_np", None)
        monkeypatch.setenv(ENGINE_ENV_VAR, "numpy")
        assert engine_mode() == ENGINE_VECTORIZED

    def test_config_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, ENGINE_NUMPY)
        assert engine_mode(ENGINE_REFERENCE) == ENGINE_REFERENCE

    @pytest.mark.parametrize("raw,expected", [
        ("numpy", ENGINE_NUMPY),
        ("auto", ENGINE_NUMPY),
        ("level", ENGINE_NUMPY),
        ("vectorized", ENGINE_VECTORIZED),
        ("flat", ENGINE_VECTORIZED),
        ("reference", ENGINE_REFERENCE),
        ("REF", ENGINE_REFERENCE),
    ])
    def test_aliases(self, monkeypatch, raw, expected):
        monkeypatch.setenv(ENGINE_ENV_VAR, raw)
        assert engine_mode() == expected

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "turbo")
        with pytest.raises(ValueError):
            engine_mode()


@pytest.mark.parametrize("family", sorted(STDLIB_FAMILIES))
@pytest.mark.parametrize("opt", ALL_OPTS, ids=lambda o: o.value)
class TestDecoupledEquivalence:
    def test_simulate_identical(self, monkeypatch, family, opt):
        result, config = _compiled(family, opt)
        _assert_identical(_all_engines(
            monkeypatch, lambda: _sim_snapshot(result.streams, config)
        ))

    def test_bank_conflicts_identical(self, monkeypatch, family, opt):
        """The numpy engine's bank-conflict fallback (port arbitration
        is sequential, so it defers to the flat loop) must stay
        indistinguishable from the other engines."""
        result, config = _compiled(family, opt)
        conflict_config = config._replace(model_bank_conflicts=True)
        _assert_identical(_all_engines(
            monkeypatch, lambda: _sim_snapshot(result.streams, conflict_config)
        ))


@pytest.mark.parametrize("family", sorted(STDLIB_FAMILIES))
@pytest.mark.parametrize("opt", ALL_OPTS, ids=lambda o: o.value)
class TestCoupledEquivalence:
    def test_coupled_and_pull_identical(self, monkeypatch, family, opt):
        result, config = _compiled(family, opt)
        _assert_identical(_all_engines(
            monkeypatch, lambda: _coupled_snapshot(result.streams, config)
        ))

    def test_generous_queues_converge_to_decoupled(self, monkeypatch, family, opt):
        """With effectively infinite queue SRAM the coupled model must
        reproduce the decoupled runtime exactly -- the paper's complete-
        decoupling claim, checked per family and opt level."""
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        result, config = _compiled(family, opt)
        coupled = coupled_runtime(result.streams, config, queue_bytes_per_ge=1 << 40)
        decoupled = simulate(result.streams, config)
        assert coupled.cycles == pytest.approx(decoupled.runtime_cycles)
        assert coupled.slowdown_vs_decoupled == pytest.approx(1.0)


class TestMulticoreEquivalence:
    @pytest.mark.parametrize("opt", ALL_OPTS, ids=lambda o: o.value)
    def test_relu_multicore_identical(self, monkeypatch, opt):
        built = get_workload("ReLU").build(k=16, width=8)
        config = HaacConfig(n_ges=4, sww_bytes=16 * 1024)

        def run():
            result = simulate_multicore(built.circuit, config, 4, opt=opt)
            return (
                result.core_compute_cycles,
                result.total_traffic_cycles,
                result.single_core_runtime_s,
                result.shards,
            )

        _assert_identical(_all_engines(monkeypatch, run))

    @pytest.mark.parametrize("family", sorted(STDLIB_FAMILIES))
    def test_families_multicore_identical(self, monkeypatch, family):
        config = HaacConfig(n_ges=4, sww_bytes=16 * 1024)
        circuit = _circuit(family)

        def run():
            result = simulate_multicore(circuit, config, 2)
            return (
                result.core_compute_cycles,
                result.total_traffic_cycles,
                result.single_core_runtime_s,
            )

        _assert_identical(_all_engines(monkeypatch, run))


@pytest.mark.slow
@pytest.mark.parametrize("opt", ALL_OPTS, ids=lambda o: o.value)
class TestExhaustiveAes:
    """All-families x all-opt-levels is the classes above; this adds the
    200k-gate AES-128 flagship at every opt level."""

    def test_aes128_all_models_identical(self, monkeypatch, opt):
        result, config = _compiled("aes128", opt, sww_bytes=64 * 1024)

        def run():
            return (
                _sim_snapshot(result.streams, config),
                _coupled_snapshot(result.streams, config),
            )

        _assert_identical(_all_engines(monkeypatch, run))


class TestNumpyEngineDetails:
    def test_config_pin_overrides_environment(self, monkeypatch):
        """config.sim_engine wins over REPRO_SIM_ENGINE and all pins
        agree with each other."""
        monkeypatch.setenv(ENGINE_ENV_VAR, ENGINE_REFERENCE)
        result, config = _compiled("adder8", OptLevel.RO_RN_ESW)
        snapshots = [
            _sim_snapshot(result.streams, config.with_sim_engine(engine))
            for engine in ALL_ENGINES
        ]
        _assert_identical(snapshots)

    def test_numpy_absent_fallback_still_simulates(self, monkeypatch):
        """With NumPy unimportable the default engine must degrade to
        the flat loop and produce the same numbers."""
        result, config = _compiled("logic8", OptLevel.RO_RN_ESW)
        monkeypatch.setenv(ENGINE_ENV_VAR, "numpy")
        with_numpy = _sim_snapshot(result.streams, config)
        monkeypatch.setattr(engine_module, "_np", None)
        without_numpy = _sim_snapshot(result.streams, config)
        assert with_numpy == without_numpy

    def test_levels_respect_dependences(self):
        """Every ordering constraint of the replay crosses (or, for
        in-order issue, never descends) a level boundary."""
        result, _ = _compiled("integer8", OptLevel.RO_RN_ESW)
        arrays = engine_module.compiled_arrays(result.streams).ensure_levels()
        level_of = arrays.level_of
        n_inputs = arrays.n_inputs
        shift = arrays.capacity - n_inputs
        ge_seen = {}
        for p in range(arrays.n_instructions):
            for wire in (arrays.a_of[p], arrays.b_of[p]):
                if wire >= n_inputs:
                    assert level_of[wire - n_inputs] < level_of[p]
                evictor = wire + shift
                if p < evictor < arrays.n_instructions:
                    assert level_of[p] < level_of[evictor]
                if 0 <= evictor < p:
                    assert level_of[p] >= level_of[evictor]
            ge = arrays.ge_of[p]
            if ge in ge_seen:
                assert level_of[p] >= ge_seen[ge]
            ge_seen[ge] = level_of[p]
