"""Comparison baselines: EMP-on-CPU model, plaintext model, prior work."""

from .cpu_model import (
    DEFAULT_CPU,
    GARBLE_OVERHEAD,
    REKEY_OVERHEAD,
    CpuCostModel,
    cpu_gc_time_s,
)
from .plaintext import DEFAULT_PLAINTEXT, PlaintextModel, plaintext_time_s
from .prior_work import (
    GPU_GATES_PER_US,
    HAAC_PAPER_GATES_PER_US,
    MICRO_WORKLOADS,
    PRIOR_WORK,
    PriorWorkEntry,
    build_micro,
)

__all__ = [
    "CpuCostModel",
    "DEFAULT_CPU",
    "cpu_gc_time_s",
    "GARBLE_OVERHEAD",
    "REKEY_OVERHEAD",
    "PlaintextModel",
    "DEFAULT_PLAINTEXT",
    "plaintext_time_s",
    "PriorWorkEntry",
    "PRIOR_WORK",
    "MICRO_WORKLOADS",
    "build_micro",
    "GPU_GATES_PER_US",
    "HAAC_PAPER_GATES_PER_US",
]
