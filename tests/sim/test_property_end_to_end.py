"""Property test: the whole toolchain on random circuits and configs.

For any random circuit, any optimization level, any (small) GE count and
SWW size: compile -> generate streams -> execute on the functional HAAC
machine with real cryptography -> decode == plaintext evaluation.
This is the single highest-leverage invariant in the reproduction.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import OptLevel, compile_circuit
from repro.sim.config import HaacConfig
from repro.sim.functional import run_functional
from repro.sim.timing import simulate
from tests.conftest import random_circuit


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_gates=st.integers(20, 120),
    n_ges=st.sampled_from([1, 2, 4]),
    sww_wires=st.sampled_from([16, 64, 256]),
    opt=st.sampled_from(list(OptLevel)),
)
def test_compile_execute_decode_matches_plaintext(
    seed, n_gates, n_ges, sww_wires, opt
):
    rng = random.Random(seed)
    circuit = random_circuit(
        rng, n_inputs=8, n_gates=n_gates, and_fraction=0.4, inv_fraction=0.15
    )
    config = HaacConfig(n_ges=n_ges, sww_bytes=sww_wires * 16)
    result = compile_circuit(
        circuit, config.window, config.n_ges, opt=opt,
        params=config.schedule_params(),
    )
    garbler_bits = [rng.randint(0, 1) for _ in range(circuit.n_garbler_inputs)]
    evaluator_bits = [rng.randint(0, 1) for _ in range(circuit.n_evaluator_inputs)]
    g2, e2 = result.lowered.adapt_inputs(garbler_bits, evaluator_bits)

    run = run_functional(result.streams, g2, e2, seed=seed)
    assert run.output_bits == circuit.eval_plain(garbler_bits, evaluator_bits)

    # The timing model must accept the same streams and agree on counts.
    sim = simulate(result.streams, config)
    assert sim.n_instructions == len(result.program.instructions)
    assert run.oor_pops == result.streams.oor_reads
    assert run.dram_wire_writes == result.program.n_live


def test_readerless_wire_waw_slot_hazard_regression():
    """Regression (found by the property test above): a wire with no
    in-window readers -- e.g. a live write-back consumed only through
    the OoRW queue -- gave the window-sync rule nothing to order the
    slot's evicting write against, so a lagging producer on another GE
    could stomp the slot *after* the eviction wrote it (WAW hazard).
    The schedule now records every write as its slot's first access.
    This example (seed=2, 91 gates, 4 GEs, 16-wire SWW, SEG_RN) tripped
    the functional machine's tagless-read assertion before the fix.
    """
    rng = random.Random(2)
    circuit = random_circuit(
        rng, n_inputs=8, n_gates=91, and_fraction=0.4, inv_fraction=0.15
    )
    config = HaacConfig(n_ges=4, sww_bytes=16 * 16)
    result = compile_circuit(
        circuit, config.window, config.n_ges, opt=OptLevel.SEG_RN,
        params=config.schedule_params(),
    )
    garbler_bits = [rng.randint(0, 1) for _ in range(circuit.n_garbler_inputs)]
    evaluator_bits = [
        rng.randint(0, 1) for _ in range(circuit.n_evaluator_inputs)
    ]
    g2, e2 = result.lowered.adapt_inputs(garbler_bits, evaluator_bits)
    run = run_functional(result.streams, g2, e2, seed=2)
    assert run.output_bits == circuit.eval_plain(garbler_bits, evaluator_bits)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    sww_wires=st.sampled_from([16, 64]),
)
def test_esw_never_changes_results(seed, sww_wires):
    """ESW only removes write-backs; outputs must be identical."""
    rng = random.Random(seed)
    circuit = random_circuit(rng, n_inputs=6, n_gates=80, inv_fraction=0.1)
    config = HaacConfig(n_ges=2, sww_bytes=sww_wires * 16)
    garbler_bits = [rng.randint(0, 1) for _ in range(circuit.n_garbler_inputs)]
    evaluator_bits = [rng.randint(0, 1) for _ in range(circuit.n_evaluator_inputs)]

    outputs = {}
    for opt in (OptLevel.RO_RN, OptLevel.RO_RN_ESW):
        result = compile_circuit(
            circuit, config.window, config.n_ges, opt=opt,
            params=config.schedule_params(),
        )
        g2, e2 = result.lowered.adapt_inputs(garbler_bits, evaluator_bits)
        outputs[opt] = run_functional(result.streams, g2, e2, seed=seed).output_bits
    assert outputs[OptLevel.RO_RN] == outputs[OptLevel.RO_RN_ESW]
