"""Chaos under multi-tenancy: a faulted session cannot hurt its
neighbours.

The serve-layer extension of the chaos invariant: when one multiplexed
session runs under a hostile fault plan, that session either completes
bit-identical to its solo run or dies with a typed
:class:`~repro.faults.ProtocolFault` -- and every co-scheduled healthy
session completes bit-identical to *its* solo run, with an empty
recovery ledger.  Identical fault seeds must reproduce identical event
signatures whether the faulted session runs solo or packed next to
neighbours (the per-step fault-install scoping under test).

Run with ``pytest -m chaos``.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    FrameTimeout,
    ProtocolFault,
    TranscriptMismatch,
    parse_fault_spec,
)
from repro.gc.protocol import TwoPartySession
from repro.serve import SessionMultiplexer

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]


def _bits(circuit):
    garbler = [(i ^ 1) & 1 for i in range(circuit.n_garbler_inputs)]
    evaluator = [i & 1 for i in range(circuit.n_evaluator_inputs)]
    return garbler, evaluator


def _solo(circuit, seed=7):
    g, e = _bits(circuit)
    return TwoPartySession(circuit, seed=seed).run_streamed(g, e)


class TestFaultIsolation:
    def test_tampered_session_dies_neighbours_complete(self, mixed_circuit):
        solo = _solo(mixed_circuit)
        g, e = _bits(mixed_circuit)
        mux = SessionMultiplexer(max_concurrent=3)
        healthy_before = mux.submit(
            TwoPartySession(mixed_circuit, seed=7), g, e
        )
        doomed = mux.submit(
            TwoPartySession(mixed_circuit, seed=7, faults="tamper:1.0,seed=5"),
            g, e,
        )
        healthy_after = mux.submit(
            TwoPartySession(mixed_circuit, seed=7), g, e
        )
        stats = mux.run_until_complete()
        assert isinstance(doomed.error, TranscriptMismatch)
        assert doomed.result is None
        for handle in (healthy_before, healthy_after):
            assert handle.result is not None
            assert handle.result.output_bits == solo.output_bits
            assert handle.result.transcript_digest == solo.transcript_digest
            assert handle.stats.recovery_events == 0
            assert handle.stats.fault_events == 0
        assert stats.completed == 2 and stats.faulted == 1
        assert doomed.stats.error == "TranscriptMismatch"

    def test_total_loss_times_out_without_stalling_service(
        self, adder_circuit
    ):
        g, e = _bits(adder_circuit)
        solo = _solo(adder_circuit)
        mux = SessionMultiplexer(max_concurrent=2)
        dead = mux.submit(
            TwoPartySession(adder_circuit, seed=7, faults="drop:1.0,seed=1"),
            g, e,
        )
        alive = mux.submit(TwoPartySession(adder_circuit, seed=7), g, e)
        mux.run_until_complete()
        assert isinstance(dead.error, FrameTimeout)
        assert alive.result.output_bits == solo.output_bits

    def test_recoverable_faults_complete_with_ledger(self, mixed_circuit):
        g, e = _bits(mixed_circuit)
        solo = _solo(mixed_circuit)
        mux = SessionMultiplexer(max_concurrent=3)
        flaky = mux.submit(
            TwoPartySession(
                mixed_circuit, seed=7,
                faults="drop:0.05,duplicate:0.2,seed=11",
            ),
            g, e,
        )
        clean = [
            mux.submit(TwoPartySession(mixed_circuit, seed=7), g, e)
            for _ in range(2)
        ]
        mux.run_until_complete()
        # The flaky session recovered: same bits, non-empty ledger.
        assert flaky.result is not None
        assert flaky.result.output_bits == solo.output_bits
        assert flaky.result.transcript_digest == solo.transcript_digest
        assert flaky.stats.recovery_events > 0
        for handle in clean:
            assert handle.result.transcript_digest == solo.transcript_digest
            assert handle.stats.recovery_events == 0

    def test_every_fault_class_isolated(self, adder_circuit):
        """One session per fault kind plus one healthy, all at once."""
        g, e = _bits(adder_circuit)
        solo = _solo(adder_circuit)
        specs = [
            "drop:0.08,seed=13",
            "corrupt:0.12,seed=13",
            "duplicate:0.3,seed=13",
            "reorder:0.3,seed=13",
            "tamper:0.15,seed=13",
        ]
        mux = SessionMultiplexer(max_concurrent=len(specs) + 1)
        chaotic = [
            mux.submit(
                TwoPartySession(adder_circuit, seed=7, faults=spec), g, e
            )
            for spec in specs
        ]
        healthy = mux.submit(TwoPartySession(adder_circuit, seed=7), g, e)
        mux.run_until_complete()
        assert healthy.result is not None
        assert healthy.result.transcript_digest == solo.transcript_digest
        assert healthy.stats.recovery_events == 0
        for handle in chaotic:
            if handle.error is not None:
                assert isinstance(handle.error, ProtocolFault)
            else:
                assert handle.result.output_bits == solo.output_bits
                assert (
                    handle.result.transcript_digest
                    == solo.transcript_digest
                )


class TestDeterminism:
    def test_multiplexing_does_not_perturb_event_signatures(
        self, mixed_circuit
    ):
        """Same fault seed, solo vs packed: identical ledgers.

        This is the direct test of per-step fault-install scoping -- if
        a neighbour's steps consumed the faulted session's plan sites
        (or vice versa), the injected/recovery sequences would shift.
        """
        spec = "drop:0.05,corrupt:0.05,duplicate:0.2,seed=7"
        g, e = _bits(mixed_circuit)

        def solo_signature():
            plan = parse_fault_spec(spec)
            result = TwoPartySession(
                mixed_circuit, seed=7, faults=plan
            ).run_streamed(g, e)
            injected = [
                (event.site, event.kind) for event in result.fault_events
            ]
            recovered = [
                (event.layer, event.kind, event.detail)
                for event in result.recovery_events
            ]
            return injected, recovered

        def mux_signature():
            mux = SessionMultiplexer(max_concurrent=3)
            flaky = mux.submit(
                TwoPartySession(
                    mixed_circuit, seed=7, faults=parse_fault_spec(spec)
                ),
                g, e,
            )
            for _ in range(2):
                mux.submit(TwoPartySession(mixed_circuit, seed=7), g, e)
            mux.run_until_complete()
            assert flaky.result is not None
            injected = [
                (event.site, event.kind)
                for event in flaky.result.fault_events
            ]
            recovered = [
                (event.layer, event.kind, event.detail)
                for event in flaky.result.recovery_events
            ]
            return injected, recovered

        solo_sig = solo_signature()
        assert solo_sig[0], "spec expected to inject at this seed"
        assert mux_signature() == solo_sig
        # And it reproduces run over run inside the service too.
        assert mux_signature() == solo_sig
