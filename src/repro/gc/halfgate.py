"""Half-Gate AND and FreeXOR gate primitives.

These are the two execution units of a HAAC gate engine (paper section
3.2): the Half-Gate unit (21-stage Garbler pipeline / 18-stage Evaluator
pipeline in hardware) and the single-cycle FreeXOR unit.  This module is
the functional specification the hardware was validated against; the
paper validates its HLS units against EMP the same way our tests validate
these functions against plaintext gate evaluation.

Algorithm (Zahur-Rosulek-Evans "Two Halves Make a Whole", with
point-and-permute colour bits ``p = lsb(W^0)``):

Garbler, gate ``c = a AND b`` with half-gate indices ``j, j'``::

    T_G   = H(W_a^0, j)  xor H(W_a^1, j)  xor (p_b ? R : 0)
    W_G^0 = H(W_a^0, j)  xor (p_a ? T_G : 0)
    T_E   = H(W_b^0, j') xor H(W_b^1, j') xor W_a^0
    W_E^0 = H(W_b^0, j') xor (p_b ? (T_E xor W_a^0) : 0)
    W_c^0 = W_G^0 xor W_E^0            table = (T_G, T_E)

Evaluator, holding labels ``W_a, W_b`` with colour bits ``s_a, s_b``::

    W_G = H(W_a, j)  xor (s_a ? T_G : 0)
    W_E = H(W_b, j') xor (s_b ? (T_E xor W_a) : 0)
    W_c = W_G xor W_E

FreeXOR: ``W_c^0 = W_a^0 xor W_b^0`` (Garbler), ``W_c = W_a xor W_b``
(Evaluator).  NOT gates are free as well: the Garbler swaps the roles of
the two labels (``W_c^0 = W_a^1``) and the Evaluator forwards the label
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .labels import lsb

__all__ = [
    "GarbledTable",
    "garble_and",
    "eval_and",
    "garble_xor",
    "eval_xor",
    "garble_not",
    "eval_not",
    "GARBLER_HASHES_PER_AND",
    "EVALUATOR_HASHES_PER_AND",
]

HashFn = Callable[[int, int], int]

# Hash-call counts per AND gate; the Garbler hashes all four input labels
# (two per half-gate), the Evaluator only its two held labels.  The paper
# notes the Evaluator uses half the AES calls of the Garbler.
GARBLER_HASHES_PER_AND = 4
EVALUATOR_HASHES_PER_AND = 2


@dataclass(frozen=True)
class GarbledTable:
    """The two 128-bit rows a Half-Gate AND ships to the Evaluator.

    32 bytes total -- the "unique, 32 Byte, cryptographic constant" per
    AND gate that HAAC's table queues stream on-chip.
    """

    generator_row: int
    evaluator_row: int

    def to_bytes(self) -> bytes:
        return self.generator_row.to_bytes(16, "big") + self.evaluator_row.to_bytes(16, "big")

    @staticmethod
    def from_bytes(data: bytes) -> "GarbledTable":
        if len(data) != 32:
            raise ValueError(f"garbled tables are 32 bytes, got {len(data)}")
        return GarbledTable(
            int.from_bytes(data[:16], "big"), int.from_bytes(data[16:], "big")
        )


def garble_and(
    wa0: int, wb0: int, r: int, gate_index: int, hash_fn: HashFn
) -> tuple[int, GarbledTable]:
    """Garble one AND gate; returns (W_c^0, table).

    ``gate_index`` is the gate's unique index; the two half-gates use
    tweaks ``2*gate_index`` and ``2*gate_index + 1`` (paper Figure 2 shows
    the two key expansions for ``2*Gate_i`` and ``2*Gate_i + 1``).
    """
    j_g = 2 * gate_index
    j_e = 2 * gate_index + 1
    wa1 = wa0 ^ r
    wb1 = wb0 ^ r
    p_a = lsb(wa0)
    p_b = lsb(wb0)

    h_a0 = hash_fn(wa0, j_g)
    h_a1 = hash_fn(wa1, j_g)
    t_g = h_a0 ^ h_a1 ^ (r if p_b else 0)
    w_g0 = h_a0 ^ (t_g if p_a else 0)

    h_b0 = hash_fn(wb0, j_e)
    h_b1 = hash_fn(wb1, j_e)
    t_e = h_b0 ^ h_b1 ^ wa0
    w_e0 = h_b0 ^ ((t_e ^ wa0) if p_b else 0)

    return w_g0 ^ w_e0, GarbledTable(t_g, t_e)


def eval_and(
    wa: int, wb: int, table: GarbledTable, gate_index: int, hash_fn: HashFn
) -> int:
    """Evaluate one AND gate from held labels and its garbled table."""
    j_g = 2 * gate_index
    j_e = 2 * gate_index + 1
    s_a = lsb(wa)
    s_b = lsb(wb)
    w_g = hash_fn(wa, j_g) ^ (table.generator_row if s_a else 0)
    w_e = hash_fn(wb, j_e) ^ ((table.evaluator_row ^ wa) if s_b else 0)
    return w_g ^ w_e


def garble_xor(wa0: int, wb0: int) -> int:
    """FreeXOR garbling: the output zero-label, no table."""
    return wa0 ^ wb0


def eval_xor(wa: int, wb: int) -> int:
    """FreeXOR evaluation."""
    return wa ^ wb


def garble_not(wa0: int, r: int) -> int:
    """Free NOT: output zero-label is the input one-label."""
    return wa0 ^ r


def eval_not(wa: int) -> int:
    """Free NOT on the Evaluator side: label passes through unchanged."""
    return wa
