"""AES-128 implemented from scratch.

HAAC's gate engines evaluate Half-Gates whose cryptographic hash is built
from AES (the paper's Figure 2 shows two key expansions and four AES calls
per garbled AND gate).  The paper's hardware implements full AES rounds in
custom logic; this module is the software equivalent and is used both by
the garbling substrate (:mod:`repro.gc.halfgate`) and, indirectly, by the
functional HAAC machine to validate compiler output.

Two implementations are provided and cross-checked by the test suite:

* :func:`encrypt_block_reference` -- a textbook FIPS-197 implementation
  (SubBytes / ShiftRows / MixColumns / AddRoundKey on a 4x4 state) that is
  easy to audit against the standard.
* :func:`encrypt_block` -- a T-table implementation that fuses SubBytes,
  ShiftRows and MixColumns into four 256-entry lookup tables.  This is the
  fast path used by the garbler/evaluator.

Blocks and keys are 128-bit Python integers (big-endian interpretation of
the 16-byte block), which keeps label XOR operations cheap elsewhere in
the code base.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

__all__ = [
    "S_BOX",
    "INV_S_BOX",
    "expand_key",
    "encrypt_block",
    "encrypt_block_reference",
    "decrypt_block",
    "aes128",
    "key_expansion_words",
]

# ---------------------------------------------------------------------------
# S-box construction.
#
# Rather than hard-coding the 256 S-box bytes we derive them from first
# principles (multiplicative inverse in GF(2^8) followed by the affine
# transform), mirroring how the paper's HLS hardware instantiates S-box
# ROMs.  The result is verified against FIPS-197 vectors in the tests.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    product = 0
    for _ in range(8):
        if b & 1:
            product ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return product


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); 0 maps to 0 by AES convention."""
    if a == 0:
        return 0
    # Fermat: a^(2^8 - 2) = a^254 is the inverse in GF(2^8).
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, base)
        base = _gf_mul(base, base)
        exponent >>= 1
    return result


def _affine(byte: int) -> int:
    """The AES affine transform applied after inversion."""
    result = 0
    for bit in range(8):
        value = (
            (byte >> bit)
            ^ (byte >> ((bit + 4) % 8))
            ^ (byte >> ((bit + 5) % 8))
            ^ (byte >> ((bit + 6) % 8))
            ^ (byte >> ((bit + 7) % 8))
            ^ (0x63 >> bit)
        ) & 1
        result |= value << bit
    return result


def _build_sbox() -> List[int]:
    return [_affine(_gf_inverse(value)) for value in range(256)]


S_BOX: List[int] = _build_sbox()
INV_S_BOX: List[int] = [0] * 256
for _index, _value in enumerate(S_BOX):
    INV_S_BOX[_value] = _index

# Round constants for key expansion: rcon[i] = x^(i-1) in GF(2^8).
_RCON: List[int] = [0x01]
while len(_RCON) < 10:
    _RCON.append(_gf_mul(_RCON[-1], 0x02))


# ---------------------------------------------------------------------------
# T-tables: Te0..Te3 fuse SubBytes + MixColumns (ShiftRows is realised by
# the byte-selection pattern in the round loop).
# ---------------------------------------------------------------------------


def _build_t_tables() -> List[List[int]]:
    te0 = []
    for value in range(256):
        s = S_BOX[value]
        s2 = _gf_mul(s, 2)
        s3 = s2 ^ s
        te0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
    te1 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in te0]
    te2 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in te1]
    te3 = [((w >> 8) | ((w & 0xFF) << 24)) & 0xFFFFFFFF for w in te2]
    return [te0, te1, te2, te3]


_TE0, _TE1, _TE2, _TE3 = _build_t_tables()


# ---------------------------------------------------------------------------
# Key expansion.
# ---------------------------------------------------------------------------


def key_expansion_words(key: int) -> List[int]:
    """Expand a 128-bit key into the 44 32-bit round-key words of AES-128.

    This is the "key expansion" block the paper highlights as a major cost
    of re-keyed garbling: it runs once per hash in re-keying mode (HAAC)
    versus once per program in fixed-key mode.
    """
    if not 0 <= key < (1 << 128):
        raise ValueError("AES-128 key must be a 128-bit non-negative integer")
    words = [(key >> (96 - 32 * i)) & 0xFFFFFFFF for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            # RotWord then SubWord then Rcon.
            temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
            temp = (
                (S_BOX[(temp >> 24) & 0xFF] << 24)
                | (S_BOX[(temp >> 16) & 0xFF] << 16)
                | (S_BOX[(temp >> 8) & 0xFF] << 8)
                | S_BOX[temp & 0xFF]
            )
            temp ^= _RCON[i // 4 - 1] << 24
        words.append(words[i - 4] ^ temp)
    return words


@lru_cache(maxsize=4096)
def expand_key(key: int) -> tuple:
    """Cached key expansion returning an immutable word tuple.

    The cache models nothing architectural -- it simply avoids recomputing
    schedules for repeated keys (e.g. fixed-key mode or repeated gate
    indices in tests).  Re-keyed garbling of a large circuit uses a fresh
    gate index per hash, so the cache is sized generously but the cost
    model (see :mod:`repro.baselines.cpu_model`) still charges a full
    expansion per hash as the paper does.
    """
    return tuple(key_expansion_words(key))


# ---------------------------------------------------------------------------
# Block encryption.
# ---------------------------------------------------------------------------


def _block_to_columns(block: int) -> List[int]:
    """Split a 128-bit block into four big-endian 32-bit column words."""
    return [(block >> (96 - 32 * i)) & 0xFFFFFFFF for i in range(4)]


def _columns_to_block(columns: Sequence[int]) -> int:
    return (columns[0] << 96) | (columns[1] << 64) | (columns[2] << 32) | columns[3]


def encrypt_block(block: int, key: int) -> int:
    """Encrypt one 128-bit block with AES-128 (T-table fast path)."""
    words = expand_key(key)
    c0, c1, c2, c3 = _block_to_columns(block)
    c0 ^= words[0]
    c1 ^= words[1]
    c2 ^= words[2]
    c3 ^= words[3]
    te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
    for round_index in range(1, 10):
        base = 4 * round_index
        n0 = (
            te0[(c0 >> 24) & 0xFF]
            ^ te1[(c1 >> 16) & 0xFF]
            ^ te2[(c2 >> 8) & 0xFF]
            ^ te3[c3 & 0xFF]
            ^ words[base]
        )
        n1 = (
            te0[(c1 >> 24) & 0xFF]
            ^ te1[(c2 >> 16) & 0xFF]
            ^ te2[(c3 >> 8) & 0xFF]
            ^ te3[c0 & 0xFF]
            ^ words[base + 1]
        )
        n2 = (
            te0[(c2 >> 24) & 0xFF]
            ^ te1[(c3 >> 16) & 0xFF]
            ^ te2[(c0 >> 8) & 0xFF]
            ^ te3[c1 & 0xFF]
            ^ words[base + 2]
        )
        n3 = (
            te0[(c3 >> 24) & 0xFF]
            ^ te1[(c0 >> 16) & 0xFF]
            ^ te2[(c1 >> 8) & 0xFF]
            ^ te3[c2 & 0xFF]
            ^ words[base + 3]
        )
        c0, c1, c2, c3 = n0, n1, n2, n3
    # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    sbox = S_BOX
    f0 = (
        (sbox[(c0 >> 24) & 0xFF] << 24)
        | (sbox[(c1 >> 16) & 0xFF] << 16)
        | (sbox[(c2 >> 8) & 0xFF] << 8)
        | sbox[c3 & 0xFF]
    ) ^ words[40]
    f1 = (
        (sbox[(c1 >> 24) & 0xFF] << 24)
        | (sbox[(c2 >> 16) & 0xFF] << 16)
        | (sbox[(c3 >> 8) & 0xFF] << 8)
        | sbox[c0 & 0xFF]
    ) ^ words[41]
    f2 = (
        (sbox[(c2 >> 24) & 0xFF] << 24)
        | (sbox[(c3 >> 16) & 0xFF] << 16)
        | (sbox[(c0 >> 8) & 0xFF] << 8)
        | sbox[c1 & 0xFF]
    ) ^ words[42]
    f3 = (
        (sbox[(c3 >> 24) & 0xFF] << 24)
        | (sbox[(c0 >> 16) & 0xFF] << 16)
        | (sbox[(c1 >> 8) & 0xFF] << 8)
        | sbox[c2 & 0xFF]
    ) ^ words[43]
    return _columns_to_block([f0, f1, f2, f3])


def aes128(block: int, key: int) -> int:
    """Alias for :func:`encrypt_block` matching the paper's notation."""
    return encrypt_block(block, key)


# ---------------------------------------------------------------------------
# Reference (state-matrix) implementation, used to cross-check the T-table
# path.  Also provides decryption for completeness of the substrate.
# ---------------------------------------------------------------------------


def _block_to_state(block: int) -> List[List[int]]:
    """FIPS-197 column-major state: state[row][col]."""
    data = block.to_bytes(16, "big")
    return [[data[row + 4 * col] for col in range(4)] for row in range(4)]


def _state_to_block(state: List[List[int]]) -> int:
    data = bytes(state[row][col] for col in range(4) for row in range(4))
    return int.from_bytes(data, "big")


def _add_round_key(state: List[List[int]], words: Sequence[int], round_index: int) -> None:
    for col in range(4):
        word = words[4 * round_index + col]
        for row in range(4):
            state[row][col] ^= (word >> (24 - 8 * row)) & 0xFF


def _sub_bytes(state: List[List[int]], box: Sequence[int]) -> None:
    for row in range(4):
        for col in range(4):
            state[row][col] = box[state[row][col]]


def _shift_rows(state: List[List[int]]) -> None:
    for row in range(1, 4):
        state[row] = state[row][row:] + state[row][:row]


def _inv_shift_rows(state: List[List[int]]) -> None:
    for row in range(1, 4):
        state[row] = state[row][-row:] + state[row][:-row]


def _mix_columns(state: List[List[int]]) -> None:
    for col in range(4):
        a = [state[row][col] for row in range(4)]
        state[0][col] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
        state[1][col] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
        state[2][col] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
        state[3][col] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)


def _inv_mix_columns(state: List[List[int]]) -> None:
    for col in range(4):
        a = [state[row][col] for row in range(4)]
        state[0][col] = _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
        state[1][col] = _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
        state[2][col] = _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
        state[3][col] = _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)


def encrypt_block_reference(block: int, key: int) -> int:
    """Textbook AES-128 encryption, used to validate the T-table path."""
    words = key_expansion_words(key)
    state = _block_to_state(block)
    _add_round_key(state, words, 0)
    for round_index in range(1, 10):
        _sub_bytes(state, S_BOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, words, round_index)
    _sub_bytes(state, S_BOX)
    _shift_rows(state)
    _add_round_key(state, words, 10)
    return _state_to_block(state)


def decrypt_block(block: int, key: int) -> int:
    """AES-128 decryption (inverse cipher)."""
    words = key_expansion_words(key)
    state = _block_to_state(block)
    _add_round_key(state, words, 10)
    for round_index in range(9, 0, -1):
        _inv_shift_rows(state)
        _sub_bytes(state, INV_S_BOX)
        _add_round_key(state, words, round_index)
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _sub_bytes(state, INV_S_BOX)
    _add_round_key(state, words, 0)
    return _state_to_block(state)
