"""``repro bench throughput`` -- garbling/evaluation gates-per-second.

Measures the scalar reference and the batched NumPy backend on a stdlib
circuit, plus the ``parallel`` backend's worker-scaling curve (the
software analogue of the paper's GE-scaling figure).  The single source
of truth for both the CLI suite and the pytest-benchmark harness in
``benchmarks/bench_throughput.py`` -- the measurement itself lives in
:mod:`repro.gc.backends.throughput`; this module owns circuit/repeat
selection, report assembly and rendering.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from ..gc.backends.throughput import (
    BENCH_CIRCUITS,
    build_bench_circuit,
    measure_parallel_scaling,
    measure_throughput,
)
from .runner import BenchRunner, add_common_arguments

HELP = "garbling/evaluation throughput per label-hash backend"
DEFAULT_OUT = "BENCH_throughput.json"
FULL_REPEATS = 2


def bench_circuit_name(name: str, quick: bool) -> str:
    """``--quick`` downgrades the default AES-128 to the small mixed circuit."""
    return "mixed8" if quick and name == "aes128" else name


def parse_workers(spec: str) -> Optional[List[int]]:
    """'1,2,4' -> counts; '', 'none', '0' -> None (skip the sweep)."""
    if spec.strip().lower() in ("", "none", "0"):
        return None
    return [int(token) for token in spec.split(",") if token.strip()]


def measure(
    runner: BenchRunner,
    circuit_name: str = "aes128",
    backends: Sequence[str] = ("scalar", "numpy"),
    worker_counts: Optional[Sequence[int]] = (1, 2, 4),
) -> Dict:
    """The full throughput report (schema ``repro.bench_throughput/v1``)."""
    repeats = runner.repeats(FULL_REPEATS)
    circuit = build_bench_circuit(
        bench_circuit_name(circuit_name, runner.quick)
    )
    report = measure_throughput(
        circuit, backends=list(backends), repeats=repeats
    )
    if worker_counts:
        report["parallel"] = measure_parallel_scaling(
            circuit, worker_counts=list(worker_counts), repeats=repeats
        )
    return report


def render(report: Dict) -> str:
    info = report["circuit"]
    lines = [
        f"circuit {info['name']}: {info['gates']} gates "
        f"({info['and_gates']} AND, {info['levels']} levels)"
    ]
    for name, entry in report["backends"].items():
        garble = entry["garble"]
        evaluate = entry["evaluate"]
        lines.append(
            f"  {name:>8}: garble {garble['gates_per_s']:>12,.0f} gates/s "
            f"({garble['seconds']:.3f}s)  evaluate "
            f"{evaluate['gates_per_s']:>12,.0f} gates/s ({evaluate['seconds']:.3f}s)"
        )
    for name, speedup in report["speedup_vs_scalar"].items():
        lines.append(
            f"  {name} vs scalar: {speedup['garble']:.1f}x garble, "
            f"{speedup['evaluate']:.1f}x evaluate"
        )
    for entry in report["skipped"]:
        lines.append(f"  skipped {entry['backend']}: {entry['reason']}")
    scaling = report.get("parallel")
    if scaling:
        lines.append(
            f"parallel scaling (inner={scaling['inner']}, "
            f"{scaling['cpu_count']} cores visible):"
        )
        for workers, entry in scaling["workers"].items():
            garble = entry["garble"]
            speedup = scaling["speedup_vs_1"].get(workers, {}).get("garble")
            suffix = f"  ({speedup:.2f}x vs 1 worker)" if speedup else ""
            lines.append(
                f"  {workers:>2} workers: garble "
                f"{garble['gates_per_s']:>12,.0f} gates/s{suffix}"
            )
        for workers, reason in scaling["pool_fallbacks"].items():
            lines.append(f"  {workers} workers fell back to serial: {reason}")
    return "\n".join(lines)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--circuit",
        default="aes128",
        choices=sorted(BENCH_CIRCUITS),
        help="stdlib circuit to garble (default: aes128)",
    )
    parser.add_argument(
        "--backends",
        default="scalar,numpy",
        help="comma-separated backend names (default: scalar,numpy)",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts for the parallel-backend "
        "scaling sweep, or 'none' to skip it (default: 1,2,4)",
    )


def run(args: argparse.Namespace) -> int:
    runner = BenchRunner.from_args(args)
    backends = [
        name.strip() for name in args.backends.split(",") if name.strip()
    ]
    report = measure(
        runner,
        circuit_name=args.circuit,
        backends=backends,
        worker_counts=parse_workers(args.workers),
    )
    out_path = runner.merge_section(report, key=None)
    print(render(report))
    print(f"wrote {out_path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_arguments(parser, DEFAULT_OUT)
    add_arguments(parser)
    return run(parser.parse_args(argv))
