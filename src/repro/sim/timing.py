"""Cycle-level timing simulation of the HAAC accelerator.

The model follows the paper's decoupled-streaming architecture
(sections 3.1.4, 6.2): gate execution and off-chip movement overlap
completely, so runtime is ``max(compute, traffic)`` -- exactly the two
bars of the paper's Figure 7.

**Compute component** -- replays the compiler's per-GE instruction
streams in order.  Instruction ``p`` on GE ``g`` issues at::

    issue(p) = max(last_issue(g) + 1,                  # 1 instr/cycle, in-order
                   max over operands of value_ready)   # forwarding network

where ``value_ready = issue(producer) + exec_latency`` (+1 cycle when the
producer ran on a different GE), ``exec_latency`` is 1 for FreeXOR and
the Half-Gate pipeline depth for AND (18 Evaluator / 21 Garbler).  An
optional mode models SWW bank conflicts (each single-ported bank at the
2 GHz SWW clock serves two accesses per 1 GHz GE cycle).

**Traffic component** -- exact byte counts over the streaming DRAM pipe:
preloaded inputs, instruction streams, garbled tables (read by the
Evaluator, written by the Garbler -- same bytes), OoR wire reads plus
their 4-byte address stream, and live-wire write-backs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from ..core.isa import HaacOp
from ..core.passes.streams import StreamSet
from ..core.sww import WIRE_BYTES
from .config import OOR_ADDR_BYTES, TABLE_BYTES, HaacConfig
from .dram import BandwidthLedger
from .stats import SimResult, StallBreakdown

__all__ = ["simulate", "compute_traffic"]


def compute_traffic(streams: StreamSet, config: HaacConfig) -> BandwidthLedger:
    """Exact off-chip byte counts for one program execution."""
    program = streams.program
    ledger = BandwidthLedger()
    ledger.charge("input_rd", program.n_inputs * WIRE_BYTES)
    ledger.charge("instr_rd", len(program.instructions) * config.instr_bytes)
    ledger.charge("table_rd", program.n_and * TABLE_BYTES)
    ledger.charge("oorw_rd", streams.oor_reads * (WIRE_BYTES + OOR_ADDR_BYTES))
    ledger.charge("live_wr", program.n_live * WIRE_BYTES)
    return ledger


def _compute_cycles(
    streams: StreamSet, config: HaacConfig, stalls: StallBreakdown
) -> tuple[int, Dict[int, int]]:
    """Replay the per-GE streams in order; returns (cycles, issued per GE)."""
    program = streams.program
    n_inputs = program.n_inputs
    gates = program.netlist.gates
    instructions = program.instructions
    ge_of = streams.ge_of

    and_latency = config.and_latency
    xor_latency = config.xor_latency
    forward = config.cross_ge_forward

    value_ready = [0] * program.n_wires
    producer_ge = [-1] * program.n_wires
    ge_last_issue = [-1] * streams.n_ges
    issued_per_ge: Dict[int, int] = defaultdict(int)
    # Window-sync hazard of the tagless SWW: a write to wire o lands in
    # the slot of wire o - capacity and must wait for its last in-window
    # reader (see core.passes.streams._greedy_schedule).
    capacity = streams.window.capacity
    last_read_issue = [0] * program.n_wires

    conflicts = config.model_bank_conflicts
    n_banks = config.n_banks
    # Each single-ported bank runs at sww_clock; accesses per GE cycle:
    ports_per_cycle = max(1, int(config.sww_clock_hz / config.ge_clock_hz))
    bank_load: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))

    max_finish = 0
    for position, gate in enumerate(gates):
        instr = instructions[position]
        ge = ge_of[position]
        earliest_inorder = ge_last_issue[ge] + 1
        ready = earliest_inorder
        for wire in (gate.a, gate.b):
            available = value_ready[wire]
            if (
                wire >= n_inputs
                and producer_ge[wire] >= 0
                and producer_ge[wire] != ge
            ):
                available += forward
            if available > ready:
                ready = available
        if ready > earliest_inorder:
            stalls.dependence += ready - earliest_inorder
        out = program.out_addr(position)
        evicted = out - capacity
        if evicted >= 0 and last_read_issue[evicted] > ready:
            stalls.window_sync += last_read_issue[evicted] - ready
            ready = last_read_issue[evicted]
        issue = ready

        if conflicts:
            # Reads hit banks at issue + 1 (address-to-bank stage).
            while True:
                cycle_loads = bank_load[issue + 1]
                banks = [gate.a % n_banks, gate.b % n_banks]
                if all(
                    cycle_loads[bank] + banks.count(bank) <= ports_per_cycle
                    for bank in set(banks)
                ):
                    for bank in banks:
                        cycle_loads[bank] += 1
                    break
                stalls.bank_conflict += 1
                issue += 1

        ge_last_issue[ge] = issue
        issued_per_ge[ge] += 1
        latency = and_latency if instr.op is HaacOp.AND else xor_latency
        value_ready[out] = issue + latency
        producer_ge[out] = ge
        for wire in (gate.a, gate.b):
            if issue + 1 > last_read_issue[wire]:
                last_read_issue[wire] = issue + 1
        finish = issue + latency + config.writeback_stages
        if finish > max_finish:
            max_finish = finish

    if instructions:
        last_issue = max(ge_last_issue)
        stalls.drain += max(0, max_finish - (last_issue + 1))
    return max_finish, dict(issued_per_ge)


def simulate(streams: StreamSet, config: HaacConfig) -> SimResult:
    """Run the decoupled timing model for one compiled program."""
    stalls = StallBreakdown()
    compute_cycles, issued_per_ge = _compute_cycles(streams, config, stalls)
    ledger = compute_traffic(streams, config)
    traffic_cycles = ledger.total_bytes / config.dram_bytes_per_ge_cycle
    program = streams.program
    return SimResult(
        name=program.name,
        compute_cycles=compute_cycles,
        traffic_cycles=traffic_cycles,
        ledger=ledger,
        stalls=stalls,
        n_instructions=len(program.instructions),
        n_and=program.n_and,
        ge_clock_hz=config.ge_clock_hz,
        issued_per_ge=issued_per_ge,
    )
