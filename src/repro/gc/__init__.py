"""Garbled-circuits cryptographic substrate (from scratch).

Implements everything HAAC's gate engines compute in hardware: AES-128,
the re-keyed gate hash, Half-Gate AND, FreeXOR, whole-circuit garbling
and evaluation, oblivious transfer, and the two-party protocol.
"""

from .aes import decrypt_block, encrypt_block, expand_key
from .backends import (
    BackendUnavailable,
    LabelHashBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from .evaluate import (
    EvaluationResult,
    evaluate_batched,
    evaluate_circuit,
    evaluate_circuit_batched,
)
from .garble import GarbledCircuit, Garbler, garble_circuit, garble_circuit_batched
from .halfgate import GarbledTable, eval_and, eval_xor, garble_and, garble_xor
from .hashing import GateHasher, fixed_key_hash, rekeyed_hash
from .labels import LabelPair, lsb
from .ot import run_ot, run_ot_batch
from .protocol import SessionResult, TwoPartySession, run_two_party
from .rng import LabelPrg
from .serialize import garbled_from_bytes, garbled_to_bytes, program_from_bytes, program_to_bytes
from .classic import ClassicScheme, evaluate_classic, garble_classic

__all__ = [
    "garbled_to_bytes",
    "garbled_from_bytes",
    "program_to_bytes",
    "program_from_bytes",
    "ClassicScheme",
    "garble_classic",
    "evaluate_classic",
    "encrypt_block",
    "decrypt_block",
    "expand_key",
    "LabelPrg",
    "LabelPair",
    "lsb",
    "GateHasher",
    "rekeyed_hash",
    "fixed_key_hash",
    "GarbledTable",
    "garble_and",
    "eval_and",
    "garble_xor",
    "eval_xor",
    "Garbler",
    "GarbledCircuit",
    "garble_circuit",
    "garble_circuit_batched",
    "EvaluationResult",
    "evaluate_circuit",
    "evaluate_circuit_batched",
    "evaluate_batched",
    "BackendUnavailable",
    "LabelHashBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "run_ot",
    "run_ot_batch",
    "TwoPartySession",
    "SessionResult",
    "run_two_party",
]
