"""One-call compile + simulate convenience used by benches and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..circuits.netlist import Circuit
from ..core.compiler import CacheSpec, CompileResult, OptLevel, compile_circuit
from .config import HaacConfig
from .stats import SimResult
from .timing import simulate

__all__ = ["run_haac", "run_best_reorder", "HaacRun"]


@dataclass
class HaacRun:
    """A compiled program plus its simulated execution."""

    compile_result: CompileResult
    sim: SimResult
    config: HaacConfig

    @property
    def runtime_s(self) -> float:
        return self.sim.runtime_s


def run_haac(
    circuit: Circuit,
    config: Optional[HaacConfig] = None,
    opt: OptLevel = OptLevel.RO_RN_ESW,
    cache: Optional[CacheSpec] = None,
) -> HaacRun:
    """Compile ``circuit`` at ``opt`` and simulate it on ``config``.

    ``cache`` selects the persistent program cache; ``None`` defers to
    ``config.prog_cache`` and then ``REPRO_PROG_CACHE``.
    """
    config = config or HaacConfig.paper_default()
    result = compile_circuit(
        circuit,
        config.window,
        config.n_ges,
        opt=opt,
        params=config.schedule_params(),
        cache=cache if cache is not None else config.prog_cache,
    )
    sim = simulate(result.streams, config)
    return HaacRun(compile_result=result, sim=sim, config=config)


def run_best_reorder(
    circuit: Circuit,
    config: Optional[HaacConfig] = None,
    cache: Optional[CacheSpec] = None,
) -> Tuple[HaacRun, Dict[OptLevel, float]]:
    """Simulate both reorderings (ESW on) and keep the faster, as the
    paper does for its DDR4 results ("deploy the best performing
    optimization, as performance is deterministic")."""
    config = config or HaacConfig.paper_default()
    runs: Dict[OptLevel, HaacRun] = {}
    times: Dict[OptLevel, float] = {}
    for opt in (OptLevel.RO_RN_ESW, OptLevel.SEG_RN_ESW):
        run = run_haac(circuit, config, opt, cache=cache)
        runs[opt] = run
        times[opt] = run.runtime_s
    best = min(runs.values(), key=lambda run: run.runtime_s)
    return best, times
