"""Reusable gate-level combinators: logic, integer, fixed, float."""

from . import fixed, float as floating, integer, logic

__all__ = ["logic", "integer", "fixed", "floating"]
