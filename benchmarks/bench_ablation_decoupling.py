"""Ablation: what is HAAC's memory-compute decoupling worth?

The paper's central architectural claim (section 3.1.4): pushing OoR
wires through compiler-scheduled queues converts all off-chip movement
to streams and fully overlaps it with execution.  This benchmark
compares three memory models on the same compiled streams:

* decoupled (the paper's design): runtime = max(compute, traffic);
* coupled with finite queue SRAM: GEs can outrun the prefetcher;
* pull-based OoR (the strawman): every OoR wire is a demand miss.
"""

from repro.analysis.report import render_table
from repro.core.compiler import OptLevel, compile_circuit
from repro.sim.config import HaacConfig
from repro.sim.coupled import coupled_runtime, pull_based_runtime
from repro.sim.timing import simulate
from repro.workloads import get_workload

_WORKLOADS = ("DotProd", "Hamm", "BubbSt")


def _rows():
    rows = []
    config = HaacConfig(n_ges=16, sww_bytes=64 * 1024)
    for name in _WORKLOADS:
        built = get_workload(name).build_scaled()
        compiled = compile_circuit(
            built.circuit, config.window, config.n_ges,
            opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
        )
        decoupled = simulate(compiled.streams, config)
        coupled = coupled_runtime(compiled.streams, config)
        starved = coupled_runtime(
            compiled.streams, config, queue_bytes_per_ge=256
        )
        pull = pull_based_runtime(compiled.streams, config)
        rows.append([
            name,
            decoupled.runtime_s * 1e6,
            coupled.slowdown_vs_decoupled,
            starved.slowdown_vs_decoupled,
            pull.slowdown_vs_decoupled,
        ])
    return rows


def test_ablation_decoupling(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["Benchmark", "Decoupled (us)", "Coupled 4KB/GE",
         "Coupled 256B/GE", "Pull-based OoR"],
        rows,
        title="Ablation: memory-compute decoupling (slowdowns vs decoupled)",
    )
    for row in rows:
        # Provisioned queues recover the decoupled performance...
        assert row[2] < 1.25, row
        # ...starved queues and pull-based misses do not.
        assert row[4] >= row[2] * 0.999, row
    # Pull-based OoR must hurt at least one workload materially.
    assert max(row[4] for row in rows) > 1.2
    record_result("ablation_decoupling", text)
