"""Content-addressed store of experiment *results*.

:mod:`repro.core.progcache` caches compiled programs keyed by a stable
SHA-256 content digest; this module applies the same content-addressing
to the numbers those programs produce.  Every stored result is keyed
by::

    sha256(store schema | program digest | config signature | bench schema)

* **program digest** -- whatever stable digest identifies the computed
  artifact's input program: :func:`repro.core.progcache.compile_key`
  for a simulated point (it covers the netlist digest, window, GE
  count, opt level, schedule params *and* the compiler schema, so a
  compiler-behaviour change automatically invalidates downstream
  results), or :func:`repro.core.progcache.circuit_digest` for
  quantities that depend only on the netlist.
* **config signature** -- :func:`config_signature`, a stable hash of
  the *hardware* fields of :class:`repro.sim.config.HaacConfig`.
  Software-substrate fields (``gc_backend``, ``sim_engine``,
  ``prog_cache``, ``fault_spec``, ``gc_workers``) are deliberately
  excluded: the engine-equivalence suite guarantees every engine
  produces bit-identical results, so results are shared across them.
* **bench schema** -- a versioned row-shape identifier such as
  ``repro.sim_point/v1``.  Bumping a schema orphans old entries
  (unreachable keys) exactly like ``CACHE_SCHEMA`` does for compiled
  programs; :meth:`ResultStore.scan`/:meth:`ResultStore.prune` census
  and delete them.

Entries are one JSON file per key -- human-diffable, mergeable, and
small (a payload is a dict of numbers, not a compiled program).  Writes
are atomic (tempfile + ``os.replace``); a torn or tampered entry is
surfaced internally as the typed
:class:`repro.faults.CacheEntryTorn`, dropped, counted, and recorded in
the active :class:`repro.faults.RecoveryLog` -- the caller just
recomputes, mirroring the ``ProgramCache`` recovery contract.

Stores merge across hosts: :meth:`ResultStore.merge` folds another
store directory (or a single-file *bundle* exported by
:meth:`ResultStore.save_bundle`) into this one, keeping byte-identical
entries, adding missing ones and counting conflicts (``policy="keep"``
preserves local entries; ``policy="theirs"`` adopts the source's).
Because keys are content-addressed, disjoint sweeps shard trivially:
run the grid on N hosts, merge N stores, and every point lands exactly
once.

Resolution order for an optional store spec mirrors the program cache:
an explicit :class:`ResultStore`/path wins, then the
``REPRO_RESULT_STORE`` environment variable (a directory, ``1``/``on``
for the default location, ``0``/``off`` to disable), else disabled.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple, Union

from .. import faults as faults_mod
from ..faults import CacheEntryTorn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.config import HaacConfig

__all__ = [
    "STORE_ENV_VAR",
    "STORE_SCHEMA",
    "MergeReport",
    "ResultStore",
    "StoreScan",
    "StoreStats",
    "config_signature",
    "default_store_dir",
    "resolve_result_store",
    "result_key",
]

STORE_ENV_VAR = "REPRO_RESULT_STORE"
#: Bump whenever the entry envelope (not a payload schema) changes
#: incompatibly.  The value is baked into every key, so old entries
#: become unreachable rather than misread.
STORE_SCHEMA = 1

_OFF_VALUES = ("0", "off", "none", "disabled", "false", "no")
_ON_VALUES = ("1", "on", "default", "true", "yes", "auto")

#: HaacConfig fields that change simulated numbers.  Software-substrate
#: selection fields are excluded on purpose (see module docstring).
_SIGNATURE_FIELDS = (
    "n_ges",
    "sww_bytes",
    "banks_per_ge",
    "ge_clock_hz",
    "sww_clock_hz",
    "evaluator_and_stages",
    "garbler_and_stages",
    "xor_latency",
    "sww_read_stages",
    "writeback_stages",
    "cross_ge_forward",
    "queue_sram_bytes",
    "instr_bytes",
    "model_bank_conflicts",
)


class _StaleStoreSchema(Exception):
    """A well-formed entry written under a different ``STORE_SCHEMA``."""


def default_store_dir() -> Path:
    """``$XDG_CACHE_HOME``-respecting default store location."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "resultstore"


def config_signature(config: "HaacConfig") -> str:
    """Stable SHA-256 signature of a design point's hardware fields.

    Floats are encoded via ``repr`` (shortest round-trip form), so equal
    configs sign equally on any host.  The DRAM spec contributes its
    name and bandwidth; the role contributes its enum value.
    """
    parts = ["repro.configsig/v1"]
    for name in _SIGNATURE_FIELDS:
        value = getattr(config, name)
        parts.append(f"{name}={value!r}")
    parts.append(f"dram={config.dram.name}:{config.dram.bandwidth_gb_s!r}")
    parts.append(f"role={config.role.value}")
    return hashlib.sha256("|".join(parts).encode("ascii")).hexdigest()


def result_key(program_digest: str, config_sig: str, bench_schema: str) -> str:
    """Content-addressed store key for one result."""
    blob = "|".join(
        (
            f"repro.resultstore/v{STORE_SCHEMA}",
            program_digest,
            config_sig,
            bench_schema,
        )
    )
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


@dataclass
class StoreStats:
    """Counters for one store; ``corrupt`` entries also count as misses."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    puts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "puts": self.puts,
        }


@dataclass
class StoreScan:
    """On-disk entry census, by reachability under ``STORE_SCHEMA``."""

    live: int = 0
    live_bytes: int = 0
    stale: int = 0
    stale_bytes: int = 0
    corrupt: int = 0
    corrupt_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "live": self.live,
            "live_bytes": self.live_bytes,
            "stale": self.stale,
            "stale_bytes": self.stale_bytes,
            "corrupt": self.corrupt,
            "corrupt_bytes": self.corrupt_bytes,
        }


@dataclass
class MergeReport:
    """Outcome of folding one store (or bundle) into another.

    ``added`` entries were absent locally; ``identical`` entries already
    existed with a byte-equal payload; ``conflicts`` carried a
    *different* payload for the same key (kept or replaced per the merge
    policy -- ``replaced`` counts how many the policy adopted);
    ``corrupt`` source entries were skipped.
    """

    added: int = 0
    identical: int = 0
    conflicts: int = 0
    replaced: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "added": self.added,
            "identical": self.identical,
            "conflicts": self.conflicts,
            "replaced": self.replaced,
            "corrupt": self.corrupt,
        }


class ResultStore:
    """Directory of content-addressed JSON result entries.

    A process-local memory layer fronts the disk store (``memory=True``,
    the default) so a figure set that asks for the same point many
    times parses each entry once.  Payloads are treated as immutable by
    every client (the DataProvider converts them into frozen typed rows
    immediately); the memory layer therefore shares one dict per key.
    """

    def __init__(self, root: Union[str, Path], memory: bool = True) -> None:
        self.root = Path(root).expanduser()
        self.stats = StoreStats()
        self._memory: Optional[Dict[str, dict]] = {} if memory else None
        self._lock = threading.Lock()

    # -- keys and paths --------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- load/validate ---------------------------------------------------

    def _load_entry(self, path: Path) -> dict:
        """Read and validate one entry file.

        Raises :class:`_StaleStoreSchema` for a well-formed entry from
        another ``STORE_SCHEMA``, ``FileNotFoundError`` for a plain
        miss, and :class:`repro.faults.CacheEntryTorn` for everything
        else (truncated JSON, tampered fields, key/filename mismatch) --
        the single definition of "valid entry" shared by :meth:`get`,
        the :meth:`scan`/:meth:`prune` census and :meth:`merge`.
        """
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            entry = json.loads(text)
            schema = entry["store_schema"]
            key = entry["key"]
            derived = result_key(
                entry["program_digest"],
                entry["config_signature"],
                entry["bench_schema"],
            )
            if schema != STORE_SCHEMA:
                raise _StaleStoreSchema(path.name)
            if key != path.stem or derived != key:
                raise ValueError("key mismatch")
            entry["payload"]
        except _StaleStoreSchema:
            raise
        except Exception as exc:
            raise CacheEntryTorn(
                f"result entry {path.name}: {type(exc).__name__}: {exc}"
            ) from exc
        return entry

    # -- get/put ---------------------------------------------------------

    def get(
        self, program_digest: str, config_sig: str, bench_schema: str
    ) -> Optional[dict]:
        """Load one payload, or ``None`` on miss or corruption.

        Corrupt/stale-keyed/tampered entries are unlinked, counted and
        reported to the active recovery log; the caller recomputes.
        The store never raises on bad content.
        """
        key = result_key(program_digest, config_sig, bench_schema)
        if self._memory is not None:
            with self._lock:
                resident = self._memory.get(key)
                if resident is not None:
                    self.stats.hits += 1
                    return resident
        path = self.path_for(key)
        try:
            entry = self._load_entry(path)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except Exception as exc:
            # _StaleStoreSchema lands here too: a current-schema *key*
            # whose envelope claims another schema is tampered content.
            with self._lock:
                self.stats.misses += 1
                self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            faults_mod.record_recovery(
                "store",
                "entry_recovered",
                f"{type(exc).__name__}: dropped {path.name}; recomputing",
            )
            return None
        payload = entry["payload"]
        with self._lock:
            self.stats.hits += 1
            if self._memory is not None:
                self._memory[key] = payload
        return payload

    def put(
        self,
        program_digest: str,
        config_sig: str,
        bench_schema: str,
        payload: dict,
    ) -> str:
        """Atomically persist one payload; returns its key.

        Best-effort like the program cache: an IO error costs a future
        recompute, never an exception.  Concurrent puts of one key are
        safe -- each writer lands a complete file via ``os.replace``.
        """
        key = result_key(program_digest, config_sig, bench_schema)
        if self._memory is not None:
            with self._lock:
                self._memory[key] = payload
        entry = {
            "store_schema": STORE_SCHEMA,
            "key": key,
            "program_digest": program_digest,
            "config_signature": config_sig,
            "bench_schema": bench_schema,
            "payload": payload,
        }
        text = json.dumps(entry, sort_keys=True, indent=1) + "\n"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, self.path_for(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return key
        with self._lock:
            self.stats.puts += 1
        return key

    # -- census ----------------------------------------------------------

    def _classify(self, path: Path) -> str:
        try:
            self._load_entry(path)
        except _StaleStoreSchema:
            return "stale"
        except Exception:
            return "corrupt"
        return "live"

    def _classified_entries(self) -> Iterator[Tuple[Path, int, str]]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            yield path, size, self._classify(path)

    @staticmethod
    def _count(census: StoreScan, kind: str, size: int) -> None:
        setattr(census, kind, getattr(census, kind) + 1)
        setattr(census, f"{kind}_bytes", getattr(census, f"{kind}_bytes") + size)

    def scan(self) -> StoreScan:
        """Census of on-disk entries: live vs stale-schema vs corrupt."""
        census = StoreScan()
        for _, size, kind in self._classified_entries():
            self._count(census, kind, size)
        return census

    def prune(self) -> StoreScan:
        """Delete stale-schema and corrupt entries; keep live ones."""
        removed = StoreScan()
        for path, size, kind in self._classified_entries():
            if kind == "live":
                continue
            try:
                path.unlink()
            except OSError:
                continue
            self._count(removed, kind, size)
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        if self._memory is not None:
            with self._lock:
                self._memory.clear()
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    # -- cross-host merge ------------------------------------------------

    def _iter_source_entries(
        self, source: Union["ResultStore", str, Path]
    ) -> Iterator[Union[dict, Exception]]:
        """Yield validated entries (or the error that invalidated one)
        from a store instance, a store directory, or a bundle file."""
        if isinstance(source, ResultStore):
            paths = sorted(source.root.glob("*.json"))
            loader = source._load_entry
        else:
            src_path = Path(source).expanduser()
            if src_path.is_file():
                yield from self._iter_bundle_entries(src_path)
                return
            other = ResultStore(src_path, memory=False)
            paths = sorted(other.root.glob("*.json"))
            loader = other._load_entry
        for path in paths:
            try:
                yield loader(path)
            except FileNotFoundError:
                continue
            except Exception as exc:
                yield exc

    def _iter_bundle_entries(
        self, path: Path
    ) -> Iterator[Union[dict, Exception]]:
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("bundle_schema") != BUNDLE_SCHEMA:
            raise ValueError(
                f"{path}: not a result-store bundle "
                f"(bundle_schema={data.get('bundle_schema')!r})"
            )
        for entry in data.get("entries", []):
            try:
                derived = result_key(
                    entry["program_digest"],
                    entry["config_signature"],
                    entry["bench_schema"],
                )
                if entry["store_schema"] != STORE_SCHEMA:
                    raise _StaleStoreSchema(derived)
                if entry["key"] != derived:
                    raise ValueError("key mismatch")
                entry["payload"]
            except Exception as exc:
                yield exc
                continue
            yield entry

    def merge(
        self,
        source: Union["ResultStore", str, Path],
        policy: str = "keep",
    ) -> MergeReport:
        """Fold another store (directory, instance, or bundle file) in.

        ``policy="keep"`` (default) preserves the local entry on a
        payload conflict; ``policy="theirs"`` adopts the source's.
        Either way the conflict is counted, so a caller can demand
        conflict-free merges by asserting ``report.conflicts == 0``.
        """
        if policy not in ("keep", "theirs"):
            raise ValueError(f"unknown merge policy {policy!r}")
        report = MergeReport()
        for item in self._iter_source_entries(source):
            if isinstance(item, Exception):
                report.corrupt += 1
                continue
            key = item["key"]
            path = self.path_for(key)
            existing = None
            try:
                existing = self._load_entry(path)
            except FileNotFoundError:
                pass
            except Exception:
                # A locally-torn entry is strictly worse than the
                # source's valid one: treat as absent and adopt.
                existing = None
            if existing is None:
                self.put(
                    item["program_digest"],
                    item["config_signature"],
                    item["bench_schema"],
                    item["payload"],
                )
                report.added += 1
                continue
            if existing["payload"] == item["payload"]:
                report.identical += 1
                continue
            report.conflicts += 1
            if policy == "theirs":
                self.put(
                    item["program_digest"],
                    item["config_signature"],
                    item["bench_schema"],
                    item["payload"],
                )
                report.replaced += 1
        return report

    # -- bundles ---------------------------------------------------------

    def save_bundle(self, path: Union[str, Path]) -> int:
        """Export every live entry as one sorted JSON bundle file.

        Bundles are the unit of cross-host shipping when rsyncing a
        directory is inconvenient (CI artifacts, committed test
        fixtures); :meth:`merge` accepts them directly.  Returns the
        number of entries exported.
        """
        entries = []
        for entry_path, _, kind in self._classified_entries():
            if kind != "live":
                continue
            entries.append(self._load_entry(entry_path))
        entries.sort(key=lambda entry: entry["key"])
        bundle = {
            "bundle_schema": BUNDLE_SCHEMA,
            "store_schema": STORE_SCHEMA,
            "entries": entries,
        }
        out = Path(path).expanduser()
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(bundle, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        return len(entries)


BUNDLE_SCHEMA = "repro.resultstore.bundle/v1"


def resolve_result_store(
    spec: Union[ResultStore, str, bool, Path, None] = None,
) -> Optional[ResultStore]:
    """Resolve a store spec (see the module docstring) to a store.

    ``None`` defers to ``REPRO_RESULT_STORE``; booleans and the on/off
    keyword strings force-enable (default directory) or disable; any
    other string is a directory path.
    """
    if isinstance(spec, ResultStore):
        return spec
    if spec is None:
        env = os.environ.get(STORE_ENV_VAR, "").strip()
        if not env or env.lower() in _OFF_VALUES:
            return None
        if env.lower() in _ON_VALUES:
            return ResultStore(default_store_dir())
        return ResultStore(env)
    if spec is False:
        return None
    if spec is True:
        return ResultStore(default_store_dir())
    text = str(spec).strip()
    if not text or text.lower() in _OFF_VALUES:
        return None
    if text.lower() in _ON_VALUES:
        return ResultStore(default_store_dir())
    return ResultStore(text)
