"""NumPy-vectorized label-hash backend.

Runs the same T-table AES-128 as :mod:`repro.gc.aes` -- same tables,
same key expansion, same round structure -- but over *arrays* of blocks:
one fancy-indexed table lookup per byte position serves every label in
the batch simultaneously.  This is the software analogue of HAAC's wide
Half-Gate pipelines, where the unit of work is a whole level of gates
rather than one gate.

Block layout: a 128-bit block is a row of four ``uint32`` big-endian
column words, ``block = c0 << 96 | c1 << 64 | c2 << 32 | c3`` -- exactly
the column decomposition of the scalar T-table path, so every
intermediate value matches the scalar implementation bit for bit.

The module imports cleanly without NumPy; constructing the backend then
raises :class:`~repro.gc.backends.base.BackendUnavailable`, which the
``auto`` resolution in :func:`~repro.gc.backends.base.resolve_backend`
turns into a silent fallback to the scalar reference.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # pragma: no cover - exercised via the availability flag
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..aes import _RCON, _TE0, _TE1, _TE2, _TE3, S_BOX, expand_key
from ..hashing import FIXED_KEY
from ..rng import MASK_128
from .base import BackendUnavailable, LabelHashBackend

__all__ = ["NumpyLabelHashBackend", "numpy_available"]

_TABLES = None  # lazily-built numpy copies of the scalar AES tables


def numpy_available() -> bool:
    """Whether the vectorized backend can run in this environment."""
    return _np is not None


def _tables():
    global _TABLES
    if _TABLES is None:
        _TABLES = (
            _np.array(_TE0, dtype=_np.uint32),
            _np.array(_TE1, dtype=_np.uint32),
            _np.array(_TE2, dtype=_np.uint32),
            _np.array(_TE3, dtype=_np.uint32),
            _np.array(S_BOX, dtype=_np.uint32),
            _np.array(_RCON, dtype=_np.uint32),
        )
    return _TABLES


class NumpyLabelHashBackend(LabelHashBackend):
    """Batch TCCR hash over ``(n, 4) uint32`` block arrays."""

    name = "numpy"
    vectorized = True

    def __init__(self) -> None:
        if not numpy_available():
            raise BackendUnavailable(
                "numpy gc backend requires NumPy; install it or use the "
                "'scalar' backend"
            )
        (self._te0, self._te1, self._te2, self._te3,
         self._sbox, self._rcon) = _tables()
        self._fixed_schedule = _np.array(expand_key(FIXED_KEY), dtype=_np.uint32)

    # ------------------------------------------------------------------
    # Block <-> int conversion
    # ------------------------------------------------------------------

    @staticmethod
    def ints_to_blocks(values: Sequence[int]) -> "_np.ndarray":
        """Pack 128-bit ints into an ``(n, 4) uint32`` column array."""
        buf = b"".join(value.to_bytes(16, "big") for value in values)
        return _np.frombuffer(buf, dtype=">u4").reshape(-1, 4).astype(_np.uint32)

    @staticmethod
    def blocks_to_ints(blocks: "_np.ndarray") -> List[int]:
        """Unpack an ``(n, 4) uint32`` column array back to Python ints."""
        data = _np.ascontiguousarray(blocks).astype(">u4").tobytes()
        return [
            int.from_bytes(data[offset : offset + 16], "big")
            for offset in range(0, len(data), 16)
        ]

    def tweaks_to_keys(self, tweaks: Sequence[int]) -> "_np.ndarray":
        """Per-gate hash tweaks as AES key blocks (``index & MASK_128``)."""
        return self.ints_to_blocks([tweak & MASK_128 for tweak in tweaks])

    # ------------------------------------------------------------------
    # Vectorized AES-128
    # ------------------------------------------------------------------

    def expand_keys(self, keys: "_np.ndarray") -> "_np.ndarray":
        """Expand ``(n, 4)`` key blocks into ``(n, 44)`` round-key words.

        The per-word recurrence is sequential (40 steps) but each step
        is vectorized across the whole batch of keys -- the batched
        analogue of the "two key expansions per AND gate" the paper
        charges the re-keyed hash with.
        """
        n = keys.shape[0]
        sbox = self._sbox
        words = _np.empty((n, 44), dtype=_np.uint32)
        words[:, :4] = keys
        for i in range(4, 44):
            temp = words[:, i - 1]
            if i % 4 == 0:
                temp = ((temp << _np.uint32(8)) | (temp >> _np.uint32(24)))
                temp = (
                    (sbox[(temp >> 24) & 0xFF] << _np.uint32(24))
                    | (sbox[(temp >> 16) & 0xFF] << _np.uint32(16))
                    | (sbox[(temp >> 8) & 0xFF] << _np.uint32(8))
                    | sbox[temp & 0xFF]
                )
                temp = temp ^ (self._rcon[i // 4 - 1] << _np.uint32(24))
            words[:, i] = words[:, i - 4] ^ temp
        return words

    def encrypt_blocks(
        self, blocks: "_np.ndarray", schedules: "_np.ndarray"
    ) -> "_np.ndarray":
        """AES-128 encrypt ``(n, 4)`` blocks under ``(n, 44)`` schedules.

        ``schedules`` may also be a single ``(44,)`` schedule, broadcast
        over the batch (fixed-key mode).
        """
        te0, te1, te2, te3 = self._te0, self._te1, self._te2, self._te3
        c0 = blocks[:, 0] ^ schedules[..., 0]
        c1 = blocks[:, 1] ^ schedules[..., 1]
        c2 = blocks[:, 2] ^ schedules[..., 2]
        c3 = blocks[:, 3] ^ schedules[..., 3]
        for round_index in range(1, 10):
            base = 4 * round_index
            n0 = (
                te0[(c0 >> 24) & 0xFF]
                ^ te1[(c1 >> 16) & 0xFF]
                ^ te2[(c2 >> 8) & 0xFF]
                ^ te3[c3 & 0xFF]
                ^ schedules[..., base]
            )
            n1 = (
                te0[(c1 >> 24) & 0xFF]
                ^ te1[(c2 >> 16) & 0xFF]
                ^ te2[(c3 >> 8) & 0xFF]
                ^ te3[c0 & 0xFF]
                ^ schedules[..., base + 1]
            )
            n2 = (
                te0[(c2 >> 24) & 0xFF]
                ^ te1[(c3 >> 16) & 0xFF]
                ^ te2[(c0 >> 8) & 0xFF]
                ^ te3[c1 & 0xFF]
                ^ schedules[..., base + 2]
            )
            n3 = (
                te0[(c3 >> 24) & 0xFF]
                ^ te1[(c0 >> 16) & 0xFF]
                ^ te2[(c1 >> 8) & 0xFF]
                ^ te3[c2 & 0xFF]
                ^ schedules[..., base + 3]
            )
            c0, c1, c2, c3 = n0, n1, n2, n3
        sbox = self._sbox
        f0 = (
            (sbox[(c0 >> 24) & 0xFF] << _np.uint32(24))
            | (sbox[(c1 >> 16) & 0xFF] << _np.uint32(16))
            | (sbox[(c2 >> 8) & 0xFF] << _np.uint32(8))
            | sbox[c3 & 0xFF]
        ) ^ schedules[..., 40]
        f1 = (
            (sbox[(c1 >> 24) & 0xFF] << _np.uint32(24))
            | (sbox[(c2 >> 16) & 0xFF] << _np.uint32(16))
            | (sbox[(c3 >> 8) & 0xFF] << _np.uint32(8))
            | sbox[c0 & 0xFF]
        ) ^ schedules[..., 41]
        f2 = (
            (sbox[(c2 >> 24) & 0xFF] << _np.uint32(24))
            | (sbox[(c3 >> 16) & 0xFF] << _np.uint32(16))
            | (sbox[(c0 >> 8) & 0xFF] << _np.uint32(8))
            | sbox[c1 & 0xFF]
        ) ^ schedules[..., 42]
        f3 = (
            (sbox[(c3 >> 24) & 0xFF] << _np.uint32(24))
            | (sbox[(c0 >> 16) & 0xFF] << _np.uint32(16))
            | (sbox[(c1 >> 8) & 0xFF] << _np.uint32(8))
            | sbox[c2 & 0xFF]
        ) ^ schedules[..., 43]
        return _np.stack([f0, f1, f2, f3], axis=1)

    # ------------------------------------------------------------------
    # The TCCR gate hash
    # ------------------------------------------------------------------

    @staticmethod
    def sigma_blocks(blocks: "_np.ndarray") -> "_np.ndarray":
        """Vectorized linear orthomorphism sigma(x_L || x_R) = (x_L ^ x_R) || x_L."""
        out = _np.empty_like(blocks)
        out[:, 0] = blocks[:, 0] ^ blocks[:, 2]
        out[:, 1] = blocks[:, 1] ^ blocks[:, 3]
        out[:, 2] = blocks[:, 0]
        out[:, 3] = blocks[:, 1]
        return out

    def hash_with_schedules(
        self, blocks: "_np.ndarray", schedules: "_np.ndarray"
    ) -> "_np.ndarray":
        """Re-keyed hash of pre-expanded keys: ``AES_k(sigma(x)) ^ sigma(x)``.

        Taking schedules rather than raw keys lets the batched garbler
        reuse one expansion for the two labels of each half-gate.
        """
        sig = self.sigma_blocks(blocks)
        return self.encrypt_blocks(sig, schedules) ^ sig

    def hash_fixed_key_blocks(
        self, blocks: "_np.ndarray", tweak_blocks: "_np.ndarray"
    ) -> "_np.ndarray":
        """Fixed-key variant: ``AES_K(sigma(x) ^ j) ^ sigma(x) ^ j``."""
        sig = self.sigma_blocks(blocks) ^ tweak_blocks
        return self.encrypt_blocks(sig, self._fixed_schedule) ^ sig

    def hash_labels(
        self,
        labels: Sequence[int],
        tweaks: Sequence[int],
        rekeyed: bool = True,
    ) -> List[int]:
        if len(labels) != len(tweaks):
            raise ValueError("labels and tweaks must align")
        if not labels:
            return []
        blocks = self.ints_to_blocks(labels)
        if rekeyed:
            schedules = self.expand_keys(self.tweaks_to_keys(tweaks))
            out = self.hash_with_schedules(blocks, schedules)
        else:
            out = self.hash_fixed_key_blocks(blocks, self.tweaks_to_keys(tweaks))
        return self.blocks_to_ints(out)
