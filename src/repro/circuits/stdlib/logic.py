"""Generic Boolean combinators: muxes, popcounts, equality, reductions.

All combinators take the builder first and bit-vectors (little-endian
lists of wire ids) after, returning new wire lists.  Gate-count notes in
docstrings use T = garbled tables (AND gates); XOR/INV are free.
"""

from __future__ import annotations

from typing import List, Sequence

from ..builder import CircuitBuilder

__all__ = [
    "mux_bit",
    "mux",
    "equals",
    "is_zero",
    "any_bit",
    "all_bits",
    "popcount",
    "parity",
    "shift_left_const",
    "shift_right_const",
    "rotate_left_const",
    "bitwise_and",
    "bitwise_xor",
    "bitwise_not",
]


def mux_bit(b: CircuitBuilder, sel: int, if_false: int, if_true: int) -> int:
    """2:1 mux, 1T: out = if_false xor (sel and (if_false xor if_true))."""
    return b.XOR(if_false, b.AND(sel, b.XOR(if_false, if_true)))


def mux(
    b: CircuitBuilder, sel: int, if_false: Sequence[int], if_true: Sequence[int]
) -> List[int]:
    """Vector 2:1 mux, nT for n-bit operands."""
    if len(if_false) != len(if_true):
        raise ValueError("mux operands must have equal width")
    return [mux_bit(b, sel, f, t) for f, t in zip(if_false, if_true)]


def bitwise_and(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
    if len(xs) != len(ys):
        raise ValueError("operands must have equal width")
    return [b.AND(x, y) for x, y in zip(xs, ys)]


def bitwise_xor(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
    if len(xs) != len(ys):
        raise ValueError("operands must have equal width")
    return [b.XOR(x, y) for x, y in zip(xs, ys)]


def bitwise_not(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    return [b.NOT(x) for x in xs]


def any_bit(b: CircuitBuilder, bits: Sequence[int]) -> int:
    """OR-reduction as a balanced tree, (n-1)T."""
    work = list(bits)
    if not work:
        raise ValueError("any_bit needs at least one bit")
    while len(work) > 1:
        nxt = [b.OR(work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)]
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]


def all_bits(b: CircuitBuilder, bits: Sequence[int]) -> int:
    """AND-reduction as a balanced tree, (n-1)T."""
    work = list(bits)
    if not work:
        raise ValueError("all_bits needs at least one bit")
    while len(work) > 1:
        nxt = [b.AND(work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)]
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]


def parity(b: CircuitBuilder, bits: Sequence[int]) -> int:
    """XOR-reduction, free."""
    work = list(bits)
    if not work:
        raise ValueError("parity needs at least one bit")
    acc = work[0]
    for bit in work[1:]:
        acc = b.XOR(acc, bit)
    return acc


def equals(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Bit-vector equality, (n-1)T (XNOR per bit + AND tree)."""
    if len(xs) != len(ys):
        raise ValueError("operands must have equal width")
    return all_bits(b, [b.XNOR(x, y) for x, y in zip(xs, ys)])


def is_zero(b: CircuitBuilder, xs: Sequence[int]) -> int:
    """1 iff all bits are 0, (n-1)T."""
    return b.NOT(any_bit(b, xs))


def popcount(b: CircuitBuilder, bits: Sequence[int]) -> List[int]:
    """Population count via a balanced adder tree (CSA-style).

    Returns a little-endian result of ceil(log2(n+1)) bits.  Uses full
    adders (2T each) pairing equal-width partial sums, the structure the
    Hamming-distance workload's popcount uses in VIP-Bench.
    """
    from .integer import add  # local import to avoid a cycle

    if not bits:
        raise ValueError("popcount needs at least one bit")
    # Start with n one-bit numbers and repeatedly add pairs.
    sums: List[List[int]] = [[bit] for bit in bits]
    while len(sums) > 1:
        nxt: List[List[int]] = []
        for i in range(0, len(sums) - 1, 2):
            a, c = sums[i], sums[i + 1]
            width = max(len(a), len(c)) + 1
            a = a + [b.const_zero()] * (width - len(a))
            c = c + [b.const_zero()] * (width - len(c))
            nxt.append(add(b, a, c))
        if len(sums) % 2:
            nxt.append(sums[-1])
        sums = nxt
    return sums[0]


def shift_left_const(
    b: CircuitBuilder, xs: Sequence[int], amount: int
) -> List[int]:
    """Logical shift left by a constant -- free (pure rewiring)."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    width = len(xs)
    zero = b.const_zero()
    return ([zero] * min(amount, width) + list(xs))[:width]


def shift_right_const(
    b: CircuitBuilder, xs: Sequence[int], amount: int, arithmetic: bool = False
) -> List[int]:
    """Logical/arithmetic shift right by a constant -- free."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    width = len(xs)
    fill = xs[-1] if (arithmetic and xs) else b.const_zero()
    if amount >= width:
        return [fill] * width
    return list(xs[amount:]) + [fill] * amount


def rotate_left_const(b: CircuitBuilder, xs: Sequence[int], amount: int) -> List[int]:
    """Rotate left by a constant -- free."""
    width = len(xs)
    if width == 0:
        return []
    amount %= width
    return list(xs[width - amount :]) + list(xs[: width - amount])
