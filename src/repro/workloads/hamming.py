"""Hamming Distance (VIP-Bench ``Hamm``).

XOR the two parties' bit-strings and popcount the result.  The XOR layer
is free; all tables come from the popcount adder tree, giving the 25 %
AND share and very shallow depth the paper reports (Table 2: 76 levels
at 40960 bits with ILP 4311).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.builder import CircuitBuilder
from ..circuits.stdlib.integer import decode_int
from ..circuits.stdlib.logic import popcount
from .base import BuiltWorkload, PaperTable2Row, Workload

__all__ = ["build", "reference", "WORKLOAD"]


def build(n_bits: int = 2048) -> BuiltWorkload:
    """Hamming distance between two secret ``n_bits``-bit strings."""
    if n_bits < 1:
        raise ValueError("need at least one bit")
    builder = CircuitBuilder()
    alice = builder.add_garbler_inputs(n_bits)
    bob = builder.add_evaluator_inputs(n_bits)
    diff = [builder.XOR(a, b) for a, b in zip(alice, bob)]
    count = popcount(builder, diff)
    builder.mark_outputs(count)
    circuit = builder.build(f"hamming_{n_bits}")

    def encode_inputs(
        a_bits: Sequence[int], b_bits: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        if len(a_bits) != n_bits or len(b_bits) != n_bits:
            raise ValueError(f"expected two {n_bits}-bit strings")
        return [x & 1 for x in a_bits], [x & 1 for x in b_bits]

    def ref(a_bits: Sequence[int], b_bits: Sequence[int]) -> List[int]:
        value = reference(a_bits, b_bits)
        return [(value >> i) & 1 for i in range(len(count))]

    def decode_outputs(bits: Sequence[int]) -> int:
        return decode_int(bits)

    return BuiltWorkload(
        name="Hamm",
        circuit=circuit,
        params={"n_bits": n_bits},
        encode_inputs=encode_inputs,
        reference=ref,
        decode_outputs=decode_outputs,
    )


def reference(a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
    return sum((a ^ b) & 1 for a, b in zip(a_bits, b_bits))


def plaintext_ops(n_bits: int = 2048) -> int:
    """One xor+count per 64-bit word on a real CPU."""
    return max(1, 2 * n_bits // 64)


WORKLOAD = Workload(
    name="Hamm",
    description="Hamming distance: free XOR layer + popcount tree",
    build=build,
    scaled_params={"n_bits": 2048},
    paper_params={"n_bits": 40960},
    plaintext_ops=plaintext_ops,
    paper_table2=PaperTable2Row(
        levels=76, wires_k=410, gates_k=328, and_pct=25.00, ilp=4311,
        spent_wire_pct=99.93,
    ),
    character="shallow",
)
