"""Plaintext CPU model (Figure 10's 1x reference).

The paper compares against native C++ on the same i7-10700K.  We model
plaintext time as ``ops x t_op`` where ``ops`` is the workload's
arithmetic-operation count (each workload module provides it) and
``t_op`` reflects a superscalar 3.8 GHz core retiring a few simple ops
per cycle (~1 ns per scalar op including loop overhead; floating point
identical -- the paper stresses the CPU does FP natively, which is why
GradDesc's GC slowdown is extreme while its plaintext time is ordinary).

The workload modules also carry genuine executable Python references,
which serve as functional ground truth; this module is only about
*timing* the hypothetical native implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.base import Workload

__all__ = ["PlaintextModel", "DEFAULT_PLAINTEXT", "plaintext_time_s"]


@dataclass(frozen=True)
class PlaintextModel:
    """Nanoseconds per plaintext arithmetic op."""

    t_op_ns: float = 1.0

    def time_s(self, n_ops: int) -> float:
        return max(n_ops, 1) * self.t_op_ns * 1e-9

    def time_for(self, workload: Workload, **params) -> float:
        merged = dict(workload.scaled_params)
        merged.update(params)
        return self.time_s(workload.plaintext_ops(**merged))


DEFAULT_PLAINTEXT = PlaintextModel()


def plaintext_time_s(workload: Workload, **params) -> float:
    return DEFAULT_PLAINTEXT.time_for(workload, **params)
