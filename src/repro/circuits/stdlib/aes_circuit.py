"""AES-128 as a Boolean circuit (secret key *and* secret plaintext).

Used by the Table 5 comparison against FASE, whose flagship benchmark is
garbling AES-128.  The circuit computes one AES-128 block encryption
where the Garbler holds the key and the Evaluator the plaintext -- the
classic "encrypted AES" MPC benchmark.

Construction notes:

* GF(2^8) multiplication is a schoolbook AND array (64 tables) with a
  free linear reduction; squaring is linear over GF(2) and therefore
  entirely free (XOR matrix derived from the field arithmetic in
  :mod:`repro.gc.aes`).
* The S-box inverts via the Itoh-Tsujii addition chain
  ``x^254 = (x^127)^2`` with ``x^127`` from four multiplications --
  roughly 256 AND gates per S-box.  (Optimised S-boxes, e.g.
  Boyar-Peralta, reach 32 ANDs; EXPERIMENTS.md notes the inflation when
  comparing gate counts with prior work.)
* MixColumns, ShiftRows, the affine transform and round-key XORs are
  free (linear).
* The key schedule runs inside the circuit (the key is secret), adding
  four S-boxes per round.

Correctness is verified against :func:`repro.gc.aes.encrypt_block` in
the tests -- the software AES is ground truth for its own circuit.
"""

from __future__ import annotations

from typing import List, Sequence

from ...gc.aes import _gf_mul  # field arithmetic is shared with software AES
from ..builder import CircuitBuilder
from .logic import bitwise_xor

__all__ = ["build_aes128_circuit", "gf_mul_circuit", "gf_square_free", "sbox_circuit"]

_AES_POLY = 0x11B


def _reduce_poly(value: int) -> int:
    """Reduce a <15-degree GF(2) polynomial modulo the AES polynomial."""
    for degree in range(14, 7, -1):
        if value >> degree & 1:
            value ^= _AES_POLY << (degree - 8)
    return value


# x^k mod p(x) for k in [8, 15): the fold-back pattern of the reduction.
_FOLD: List[int] = [_reduce_poly(1 << k) for k in range(8, 15)]

# Squaring is linear: column j of the matrix is (x^j)^2 mod p.
_SQUARE_COLS: List[int] = [_gf_mul(1 << j, 1 << j) for j in range(8)]


def gf_mul_circuit(
    b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]
) -> List[int]:
    """GF(2^8) multiply: 64 AND partial products + free reduction."""
    if len(xs) != 8 or len(ys) != 8:
        raise ValueError("GF(2^8) operands are 8 bits")
    partial: List[List[int]] = [[] for _ in range(15)]
    for i in range(8):
        for j in range(8):
            partial[i + j].append(b.AND(xs[i], ys[j]))
    terms: List[List[int]] = [list(partial[k]) for k in range(8)]
    for k in range(8, 15):
        fold = _FOLD[k - 8]
        for bit in range(8):
            if fold >> bit & 1:
                terms[bit].extend(partial[k])
    out: List[int] = []
    for bit in range(8):
        acc = terms[bit][0]
        for wire in terms[bit][1:]:
            acc = b.XOR(acc, wire)
        out.append(acc)
    return out


def gf_square_free(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    """GF(2^8) squaring: a free XOR network (linear over GF(2))."""
    if len(xs) != 8:
        raise ValueError("GF(2^8) operands are 8 bits")
    out: List[int] = []
    for bit in range(8):
        sources = [j for j in range(8) if _SQUARE_COLS[j] >> bit & 1]
        acc = xs[sources[0]]
        for j in sources[1:]:
            acc = b.XOR(acc, xs[j])
        out.append(acc)
    return out


def _gf_square_n(b: CircuitBuilder, xs: Sequence[int], n: int) -> List[int]:
    out = list(xs)
    for _ in range(n):
        out = gf_square_free(b, out)
    return out


def _gf_inverse_circuit(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    """x^254 via Itoh-Tsujii: 4 multiplications, the rest squarings."""
    x2 = gf_square_free(b, xs)
    x3 = gf_mul_circuit(b, x2, xs)  # x^3
    x7 = gf_mul_circuit(b, gf_square_free(b, x3), xs)  # x^7
    x63 = gf_mul_circuit(b, _gf_square_n(b, x7, 3), x7)  # x^63
    x127 = gf_mul_circuit(b, gf_square_free(b, x63), xs)  # x^127
    return gf_square_free(b, x127)  # x^254 = inverse


def sbox_circuit(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    """The AES S-box: GF(2^8) inversion + free affine transform."""
    inv = _gf_inverse_circuit(b, xs)
    out: List[int] = []
    for bit in range(8):
        acc = inv[bit]
        for offset in (4, 5, 6, 7):
            acc = b.XOR(acc, inv[(bit + offset) % 8])
        if 0x63 >> bit & 1:
            acc = b.NOT(acc)
        out.append(acc)
    return out


def _xtime(b: CircuitBuilder, xs: Sequence[int]) -> List[int]:
    """Multiply by x (0x02): shift + conditional fold, all free."""
    result: List[int] = []
    for bit in range(8):
        wire = xs[bit - 1] if bit else None
        fold = xs[7] if (_AES_POLY >> bit) & 1 else None
        if wire is None and fold is None:
            result.append(b.const_zero())
        elif wire is None:
            result.append(fold)
        elif fold is None:
            result.append(wire)
        else:
            result.append(b.XOR(wire, fold))
    return result


def _mix_single_column(
    b: CircuitBuilder, column: List[List[int]]
) -> List[List[int]]:
    """MixColumns on one 4-byte column -- fully linear, free."""
    a0, a1, a2, a3 = column
    x0 = _xtime(b, a0)
    x1 = _xtime(b, a1)
    x2 = _xtime(b, a2)
    x3 = _xtime(b, a3)

    def xor3(p: List[int], q: List[int], r: List[int]) -> List[int]:
        return bitwise_xor(b, bitwise_xor(b, p, q), r)

    # 2a0 + 3a1 + a2 + a3  (3a = 2a xor a)
    out0 = xor3(bitwise_xor(b, x0, x1), a1, bitwise_xor(b, a2, a3))
    out1 = xor3(bitwise_xor(b, x1, x2), a2, bitwise_xor(b, a0, a3))
    out2 = xor3(bitwise_xor(b, x2, x3), a3, bitwise_xor(b, a0, a1))
    out3 = xor3(bitwise_xor(b, x3, x0), a0, bitwise_xor(b, a1, a2))
    return [out0, out1, out2, out3]


_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def build_aes128_circuit(b: CircuitBuilder | None = None):
    """Build the AES-128 encryption circuit.

    Returns ``(circuit, n_gates)`` -- the Garbler provides the 128-bit
    key, the Evaluator the 128-bit plaintext; the output is the 128-bit
    ciphertext.  Bytes are wired big-endian-per-byte, bit 0 = lsb, byte
    order matching :func:`repro.gc.aes.encrypt_block`'s big-endian block
    integers (byte 0 is the most significant).
    """
    builder = b or CircuitBuilder()
    key_bits = builder.add_garbler_inputs(128)
    pt_bits = builder.add_evaluator_inputs(128)

    def byte(bits: List[int], index: int) -> List[int]:
        # Byte ``index`` of the big-endian block (byte 0 most significant)
        # as an lsb-first wire list; ``bits`` is lsb-first overall.
        return bits[128 - 8 * (index + 1) : 128 - 8 * index]

    # Internal representation: state[i] = byte i (0 = most significant
    # byte of the block = row 0 / col 0 in FIPS order), each an
    # lsb-first list of 8 wires.
    key_state = [byte(key_bits, i) for i in range(16)]
    state = [byte(pt_bits, i) for i in range(16)]

    def add_round_key(state, round_key):
        return [bitwise_xor(builder, s, k) for s, k in zip(state, round_key)]

    def next_round_key(prev, round_index):
        # words are byte quadruples [w0..w3]; w[i] = bytes 4i..4i+3.
        words = [prev[4 * i : 4 * i + 4] for i in range(4)]
        rotated = words[3][1:] + words[3][:1]
        subbed = [sbox_circuit(builder, byte_bits) for byte_bits in rotated]
        rcon = _RCON[round_index]
        first = []
        for bit in range(8):
            wire = builder.XOR(words[0][0][bit], subbed[0][bit])
            if rcon >> bit & 1:
                wire = builder.NOT(wire)
            first.append(wire)
        new_w0 = [first] + [
            bitwise_xor(builder, words[0][k], subbed[k]) for k in (1, 2, 3)
        ]
        new_words = [new_w0]
        for i in range(1, 4):
            new_words.append(
                [
                    bitwise_xor(builder, new_words[i - 1][k], words[i][k])
                    for k in range(4)
                ]
            )
        return [b for word in new_words for b in word]

    def sub_bytes(state):
        return [sbox_circuit(builder, s) for s in state]

    def shift_rows(state):
        # FIPS state: byte index = 4*col + row; shift row r left by r.
        out = [None] * 16
        for col in range(4):
            for row in range(4):
                out[4 * col + row] = state[4 * ((col + row) % 4) + row]
        return out

    def mix_columns(state):
        out = []
        for col in range(4):
            column = [state[4 * col + row] for row in range(4)]
            out.extend(_mix_single_column(builder, column))
        return out

    round_key = key_state
    state = add_round_key(state, round_key)
    for round_index in range(9):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        round_key = next_round_key(round_key, round_index)
        state = add_round_key(state, round_key)
    state = sub_bytes(state)
    state = shift_rows(state)
    round_key = next_round_key(round_key, 9)
    state = add_round_key(state, round_key)

    # Emit outputs as a big-endian 128-bit block, lsb-first overall:
    # bit i of the output integer is output[i].
    out_bits: List[int] = [0] * 128
    for index in range(16):
        for bit in range(8):
            out_bits[128 - 8 * (index + 1) + bit] = state[index][bit]
    builder.mark_outputs(out_bits)
    circuit = builder.build("aes128")
    return circuit
