"""Garbling-scheme lineage: Yao4 -> P&P -> GRR3 -> Half-Gate+FreeXOR.

The paper's related work (section 7) lists the optimisations HAAC's gate
engines assume.  This benchmark quantifies each step on a real circuit:
communication (table bytes) and garbling work (hash calls), ending at
the Half-Gate + FreeXOR construction the hardware implements.
"""

import os

from repro.analysis.report import render_table
from repro.circuits.builder import CircuitBuilder
from repro.circuits.stdlib.integer import add, mul
from repro.gc.backends import BACKEND_ENV_VAR
from repro.gc.classic import ClassicScheme, garble_classic, table_bytes_per_gate
from repro.gc.garble import garble_circuit, garble_circuit_batched


def _circuit():
    builder = CircuitBuilder()
    xs = builder.add_garbler_inputs(16)
    ys = builder.add_evaluator_inputs(16)
    builder.mark_outputs(add(builder, xs, ys))
    builder.mark_outputs(mul(builder, xs, ys))
    return builder.build("add+mul16")


def _rows(circuit):
    stats = circuit.stats()
    rows = []
    for scheme in ClassicScheme:
        garbling = garble_classic(circuit, scheme, seed=1)
        rows.append([
            scheme.value,
            len(garbling.tables),
            table_bytes_per_gate(scheme),
            garbling.total_table_bytes(),
        ])
    # The Half-Gate row follows REPRO_GC_BACKEND (unset: the per-gate
    # reference); both substrates emit identical table counts/bytes.
    backend = os.environ.get(BACKEND_ENV_VAR) or None
    if backend is None:
        halfgate = garble_circuit(circuit, seed=1)
    else:
        halfgate = garble_circuit_batched(circuit, seed=1, backend=backend)
    rows.append([
        "half-gate+freexor",
        halfgate.garbled.n_and_gates,
        32,
        halfgate.garbled.table_bytes(),
    ])
    return rows, stats


def test_scheme_comparison(benchmark, record_result):
    circuit = _circuit()
    rows, stats = benchmark.pedantic(
        _rows, args=(circuit,), rounds=1, iterations=1
    )
    text = render_table(
        ["Scheme", "Tables", "Bytes/table", "Total bytes"],
        rows,
        title=(
            f"Garbling schemes on add+mul16 "
            f"({stats.gates} gates, {stats.and_gates} AND): every "
            "optimisation in the paper's lineage shrinks communication"
        ),
    )
    totals = [row[3] for row in rows]
    # Strictly decreasing: Yao4 > PNP4 > GRR3 > Half-Gate+FreeXOR.
    assert all(a > b for a, b in zip(totals, totals[1:]))
    # FreeXOR's effect: half-gate tables only for ANDs.
    assert rows[-1][1] == stats.and_gates
    assert rows[0][1] == stats.gates
    record_result("scheme_comparison", text)
