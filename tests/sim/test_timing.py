"""Timing simulator invariants and the decoupled traffic model."""

import pytest

from repro.core.compiler import OptLevel, compile_circuit
from repro.sim.config import HaacConfig, Role
from repro.sim.dram import DDR4, HBM2
from repro.sim.timing import compute_traffic, simulate


def _run(circuit, config, opt=OptLevel.RO_RN_ESW):
    result = compile_circuit(
        circuit, config.window, config.n_ges, opt=opt,
        params=config.schedule_params(),
    )
    return result, simulate(result.streams, config)


class TestTrafficModel:
    def test_byte_accounting(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        result, sim = _run(mixed_circuit, config)
        ledger = sim.ledger
        program = result.program
        assert ledger.bytes_by_stream["input_rd"] == program.n_inputs * 16
        assert (
            ledger.bytes_by_stream["instr_rd"]
            == len(program.instructions) * config.instr_bytes
        )
        assert ledger.bytes_by_stream["table_rd"] == program.n_and * 32
        assert ledger.bytes_by_stream["oorw_rd"] == result.streams.oor_reads * 20
        assert ledger.bytes_by_stream["live_wr"] == program.n_live * 16
        assert ledger.total_bytes == sum(ledger.bytes_by_stream.values())

    def test_read_write_split(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        _, sim = _run(mixed_circuit, config)
        ledger = sim.ledger
        assert ledger.read_bytes + ledger.write_bytes == ledger.total_bytes

    def test_hbm_reduces_traffic_time(self, mixed_circuit):
        ddr = HaacConfig(n_ges=4, sww_bytes=64 * 16, dram=DDR4)
        hbm = HaacConfig(n_ges=4, sww_bytes=64 * 16, dram=HBM2)
        _, sim_ddr = _run(mixed_circuit, ddr)
        _, sim_hbm = _run(mixed_circuit, hbm)
        ratio = sim_ddr.traffic_cycles / sim_hbm.traffic_cycles
        assert ratio == pytest.approx(HBM2.bandwidth_gb_s / DDR4.bandwidth_gb_s)

    def test_runtime_is_max_of_components(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        _, sim = _run(mixed_circuit, config)
        assert sim.runtime_cycles == max(
            float(sim.compute_cycles), sim.traffic_cycles
        )
        assert sim.memory_bound == (sim.traffic_cycles > sim.compute_cycles)


class TestComputeScaling:
    def test_more_ges_never_slower(self, mixed_circuit):
        cycles = []
        for n_ges in (1, 2, 4, 8):
            config = HaacConfig(n_ges=n_ges, sww_bytes=64 * 16)
            _, sim = _run(mixed_circuit, config)
            cycles.append(sim.compute_cycles)
        assert all(b <= a for a, b in zip(cycles, cycles[1:]))

    def test_single_ge_issue_bound(self, mixed_circuit):
        """One GE issues at most one instruction per cycle."""
        config = HaacConfig(n_ges=1, sww_bytes=64 * 16)
        _, sim = _run(mixed_circuit, config)
        assert sim.compute_cycles >= sim.n_instructions

    def test_garbler_pipeline_deeper(self, mixed_circuit):
        ev = HaacConfig(n_ges=2, sww_bytes=64 * 16, role=Role.EVALUATOR)
        gb = HaacConfig(n_ges=2, sww_bytes=64 * 16, role=Role.GARBLER)
        _, sim_ev = _run(mixed_circuit, ev)
        _, sim_gb = _run(mixed_circuit, gb)
        assert sim_gb.compute_cycles >= sim_ev.compute_cycles

    def test_all_instructions_counted(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        _, sim = _run(mixed_circuit, config)
        assert sum(sim.issued_per_ge.values()) == sim.n_instructions


class TestStalls:
    def test_baseline_stalls_more_than_reordered(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        _, sim_base = _run(mixed_circuit, config, OptLevel.BASELINE)
        _, sim_ro = _run(mixed_circuit, config, OptLevel.RO_RN)
        assert sim_base.stalls.dependence >= sim_ro.stalls.dependence

    def test_stall_taxonomy_nonnegative(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        _, sim = _run(mixed_circuit, config)
        breakdown = sim.stalls.as_dict()
        assert all(v >= 0 for v in breakdown.values())
        assert sim.stalls.total == sum(breakdown.values())

    def test_bank_conflicts_only_when_modelled(self, mixed_circuit):
        off = HaacConfig(n_ges=4, sww_bytes=64 * 16, model_bank_conflicts=False)
        on = HaacConfig(n_ges=4, sww_bytes=64 * 16, model_bank_conflicts=True)
        _, sim_off = _run(mixed_circuit, off)
        _, sim_on = _run(mixed_circuit, on)
        assert sim_off.stalls.bank_conflict == 0
        assert sim_on.compute_cycles >= sim_off.compute_cycles

    def test_fewer_banks_more_conflicts(self, mixed_circuit):
        few = HaacConfig(
            n_ges=4, sww_bytes=64 * 16, banks_per_ge=1, model_bank_conflicts=True
        )
        many = HaacConfig(
            n_ges=4, sww_bytes=64 * 16, banks_per_ge=8, model_bank_conflicts=True
        )
        _, sim_few = _run(mixed_circuit, few)
        _, sim_many = _run(mixed_circuit, many)
        assert sim_few.stalls.bank_conflict >= sim_many.stalls.bank_conflict


class TestSummary:
    def test_summary_fields(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        _, sim = _run(mixed_circuit, config)
        summary = sim.summary()
        assert summary["runtime_us"] > 0
        assert summary["cycles_per_gate"] > 0
        assert sim.gates_per_second > 0


class TestTrafficBatch:
    """The batched traffic walk must be bit-identical, per point, to the
    serial single-config ledger (same charges, same order, same sums)."""

    def _serial_ledger(self, streams, config):
        # The pre-batching walk, charge for charge, as an independent
        # reference (compute_traffic itself now routes via the batch).
        from repro.core.sww import WIRE_BYTES
        from repro.sim.config import OOR_ADDR_BYTES, TABLE_BYTES
        from repro.sim.dram import BandwidthLedger

        program = streams.program
        ledger = BandwidthLedger()
        ledger.charge("input_rd", program.n_inputs * WIRE_BYTES)
        ledger.charge("instr_rd", len(program.instructions) * config.instr_bytes)
        ledger.charge("table_rd", program.n_and * TABLE_BYTES)
        ledger.charge("oorw_rd", streams.oor_reads * (WIRE_BYTES + OOR_ADDR_BYTES))
        ledger.charge("live_wr", program.n_live * WIRE_BYTES)
        return ledger

    def _configs(self):
        base = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        return [
            base,
            base.variants(dram=[DDR4, HBM2])[0],
            HaacConfig(n_ges=2, sww_bytes=64 * 16, role=Role.GARBLER),
            HaacConfig(n_ges=8, sww_bytes=64 * 16),
        ]

    def test_batch_matches_serial_walk_per_point(self, mixed_circuit):
        from repro.sim.timing import compute_traffic_batch

        configs = self._configs()
        result = compile_circuit(
            mixed_circuit, configs[0].window, configs[0].n_ges,
            opt=OptLevel.RO_RN_ESW, params=configs[0].schedule_params(),
        )
        ledgers = compute_traffic_batch(result.streams, configs)
        assert len(ledgers) == len(configs)
        for config, batched in zip(configs, ledgers):
            serial = self._serial_ledger(result.streams, config)
            # Bit-identical: same charge names in the same order, same
            # per-stream byte counts, same totals.
            assert list(batched.bytes_by_stream) == list(serial.bytes_by_stream)
            assert batched.as_dict() == serial.as_dict()
            assert batched.total_bytes == serial.total_bytes
            single = compute_traffic(result.streams, config)
            assert single.as_dict() == batched.as_dict()

    def test_batch_ledgers_independent(self, mixed_circuit):
        from repro.sim.timing import compute_traffic_batch

        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        result = compile_circuit(
            mixed_circuit, config.window, config.n_ges,
            opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
        )
        first, second = compute_traffic_batch(result.streams, [config, config])
        first.charge("input_rd", 1)
        assert second.as_dict() != first.as_dict()
