"""Whole-circuit garbling (Alice / the Garbler).

Garbling is the offline phase: the Garbler draws the global offset R and
one label pair per input wire, then walks the netlist in topological
order producing (a) a 32-byte garbled table per AND gate and (b) the
zero-label of every internal wire.  XOR and INV are free (no table, no
hashing).  Output decoding information is the permute bit of each output
wire's zero-label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..circuits.netlist import Circuit, GateOp
from .halfgate import GarbledTable, garble_and, garble_not, garble_xor
from .hashing import GateHasher
from .labels import lsb
from .rng import LabelPrg

__all__ = ["GarbledCircuit", "Garbler", "garble_circuit"]


@dataclass
class GarbledCircuit:
    """Everything the Garbler ships to the Evaluator (minus input labels).

    ``tables`` holds one entry per AND gate in netlist order -- exactly
    the stream HAAC's table queues consume.  ``decode_bits`` maps each
    circuit output to the permute bit of its zero-label so the Evaluator
    can decode its result.
    """

    tables: List[GarbledTable]
    decode_bits: List[int]
    n_and_gates: int

    def table_bytes(self) -> int:
        """Total garbled-table traffic in bytes (32 B per AND gate)."""
        return 32 * len(self.tables)


@dataclass
class Garbler:
    """Holds the Garbler's secrets for one circuit execution.

    Attributes
    ----------
    r:
        The FreeXOR global offset (lsb = 1).
    zero_labels:
        ``zero_labels[w]`` is W_w^0 for every wire ``w``.
    hasher:
        The gate hash with call accounting (re-keyed by default, as HAAC
        mandates).
    """

    circuit: Circuit
    r: int
    zero_labels: List[int]
    hasher: GateHasher
    garbled: GarbledCircuit = field(init=False)

    def input_label(self, wire: int, bit: int) -> int:
        """The label encoding ``bit`` on input wire ``wire``."""
        if wire >= self.circuit.n_inputs:
            raise ValueError(f"wire {wire} is not a primary input")
        return self.zero_labels[wire] ^ (self.r if bit else 0)

    def input_labels_for(self, wires: Sequence[int], bits: Sequence[int]) -> List[int]:
        if len(wires) != len(bits):
            raise ValueError("wires and bits must align")
        return [self.input_label(w, b) for w, b in zip(wires, bits)]

    def decode(self, output_labels: Sequence[int]) -> List[int]:
        """Decode output labels to plaintext bits using the decode map."""
        bits = []
        for wire, label in zip(self.circuit.outputs, output_labels):
            bits.append(lsb(label) ^ lsb(self.zero_labels[wire]))
        return bits

    def wire_label(self, wire: int, bit: int) -> int:
        """Label of any wire for a given plaintext bit (test hook)."""
        return self.zero_labels[wire] ^ (self.r if bit else 0)


def garble_circuit(
    circuit: Circuit, seed: int = 0, rekeyed: bool = True
) -> Garbler:
    """Garble ``circuit`` deterministically from ``seed``.

    Gate indices used as hash tweaks are the gate's position in the
    netlist, matching HAAC's implicit instruction-position addressing.
    """
    circuit.validate()
    prg = LabelPrg(seed)
    r = prg.next_odd_block()
    hasher = GateHasher(rekeyed=rekeyed)

    zero_labels = [0] * circuit.n_wires
    for wire in range(circuit.n_inputs):
        zero_labels[wire] = prg.next_block()

    tables: List[GarbledTable] = []
    for gate_index, gate in enumerate(circuit.gates):
        if gate.op is GateOp.AND:
            out_zero, table = garble_and(
                zero_labels[gate.a], zero_labels[gate.b], r, gate_index, hasher
            )
            zero_labels[gate.out] = out_zero
            tables.append(table)
        elif gate.op is GateOp.XOR:
            zero_labels[gate.out] = garble_xor(zero_labels[gate.a], zero_labels[gate.b])
        else:  # INV
            zero_labels[gate.out] = garble_not(zero_labels[gate.a], r)

    decode_bits = [lsb(zero_labels[w]) for w in circuit.outputs]
    garbler = Garbler(circuit=circuit, r=r, zero_labels=zero_labels, hasher=hasher)
    garbler.garbled = GarbledCircuit(
        tables=tables,
        decode_bits=decode_bits,
        n_and_gates=len(tables),
    )
    return garbler
