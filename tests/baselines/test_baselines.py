"""CPU / plaintext cost models and prior-work data."""

import pytest

from repro.baselines.cpu_model import (
    DEFAULT_CPU,
    GARBLE_OVERHEAD,
    REKEY_OVERHEAD,
    CpuCostModel,
    cpu_gc_time_s,
)
from repro.baselines.plaintext import DEFAULT_PLAINTEXT, plaintext_time_s
from repro.baselines.prior_work import (
    MICRO_WORKLOADS,
    PRIOR_WORK,
    build_micro,
)
from repro.workloads.registry import WORKLOADS


class TestCpuModel:
    def test_garble_slower_by_paper_ratio(self, mixed_circuit):
        assert GARBLE_OVERHEAD == pytest.approx(1.119)
        eval_t = DEFAULT_CPU.eval_time_for(mixed_circuit)
        garble_t = DEFAULT_CPU.garble_time_for(mixed_circuit)
        assert garble_t / eval_t == pytest.approx(GARBLE_OVERHEAD)

    def test_time_scales_with_gates(self):
        t1 = DEFAULT_CPU.eval_time_s(100, 100)
        t2 = DEFAULT_CPU.eval_time_s(200, 200)
        assert t2 == pytest.approx(2 * t1)

    def test_and_costs_more_than_xor(self):
        and_only = DEFAULT_CPU.eval_time_s(1000, 0)
        xor_only = DEFAULT_CPU.eval_time_s(0, 1000)
        assert and_only > xor_only

    def test_fixed_key_cheaper(self):
        fixed = DEFAULT_CPU.fixed_key_model()
        assert fixed.t_and_ns == pytest.approx(DEFAULT_CPU.t_and_ns / REKEY_OVERHEAD)
        assert REKEY_OVERHEAD == pytest.approx(1.275)

    def test_stats_path_matches_circuit_path(self, mixed_circuit):
        via_circuit = DEFAULT_CPU.eval_time_for(mixed_circuit)
        via_stats = DEFAULT_CPU.eval_time_for_stats(mixed_circuit.stats())
        assert via_circuit == pytest.approx(via_stats)

    def test_convenience_wrapper(self, mixed_circuit):
        assert cpu_gc_time_s(mixed_circuit) == pytest.approx(
            DEFAULT_CPU.eval_time_for(mixed_circuit)
        )

    def test_energy(self):
        assert DEFAULT_CPU.energy_j(2.0) == pytest.approx(50.0)

    def test_slowdown_vs_plaintext_in_paper_range(self):
        """Calibration anchor: CPU GC should be ~10^5x slower than
        plaintext across the workloads (paper: 198,000x average)."""
        ratios = []
        for name in ("DotProd", "Hamm", "MatMult"):
            workload = WORKLOADS[name]
            built = workload.build_scaled()
            cpu = DEFAULT_CPU.eval_time_for(built.circuit)
            plain = DEFAULT_PLAINTEXT.time_for(workload)
            ratios.append(cpu / plain)
        geo = 1.0
        for r in ratios:
            geo *= r
        geo **= 1 / len(ratios)
        assert 1e4 < geo < 5e6


class TestPlaintextModel:
    def test_time_positive(self):
        for workload in WORKLOADS.values():
            assert plaintext_time_s(workload) > 0

    def test_scales_with_ops(self):
        assert DEFAULT_PLAINTEXT.time_s(2000) == pytest.approx(
            2 * DEFAULT_PLAINTEXT.time_s(1000)
        )

    def test_param_override(self):
        base = plaintext_time_s(WORKLOADS["Hamm"])
        bigger = plaintext_time_s(WORKLOADS["Hamm"], n_bits=4096)
        assert bigger > base


class TestPriorWork:
    def test_table5_rows_present(self):
        systems = {entry.system for entry in PRIOR_WORK}
        assert "FASE" in systems
        assert "MAXelerator" in systems
        assert "FPGA Overlay" in systems
        assert len(PRIOR_WORK) == 17

    def test_paper_speedups_recorded(self):
        fase_aes = next(
            e for e in PRIOR_WORK if e.system == "FASE" and e.benchmark == "AES-128"
        )
        assert fase_aes.garbling_time_us == pytest.approx(439.0)
        assert fase_aes.paper_speedup == pytest.approx(122.0)

    @pytest.mark.parametrize(
        "name", ["Add-6", "Add-16", "Mult-32", "Hamm-50", "Million-2", "Million-8"]
    )
    def test_micro_workloads_build(self, name):
        circuit = build_micro(name)
        circuit.validate()
        assert len(circuit.gates) > 0

    def test_millionaire_semantics(self):
        circuit = build_micro("Million-8")
        # Alice=200, Bob=100 -> Bob is poorer -> bob < alice = 1.
        a = [(200 >> i) & 1 for i in range(8)]
        b = [(100 >> i) & 1 for i in range(8)]
        assert circuit.eval_plain(a, b) == [1]
        assert circuit.eval_plain(b, a) == [0]

    def test_matmul_micro_shapes(self):
        circuit = build_micro("5x5Matx-8")
        assert circuit.n_garbler_inputs == 5 * 5 * 8
        assert len(circuit.outputs) == 5 * 5 * 8

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_micro("nope")

    def test_every_table5_benchmark_buildable(self):
        for entry in PRIOR_WORK:
            assert entry.benchmark in MICRO_WORKLOADS
