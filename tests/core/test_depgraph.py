"""Property tests for the shared dependence-graph IR (DESIGN.md 14).

:mod:`repro.core.depgraph` replaced four independent derivations of the
same dependence structure -- the netlist's ASAP levels, the per-wire
reader walks, the multicore union-find and the engine's level
partition.  Each test here pins one graph field against the legacy
derivation it replaced (re-implemented locally where the production
code no longer has it), across every small stdlib family and -- where
the compiled schedule matters -- every optimization level, so the
single-IR refactor cannot silently drift any consumer.

The schema tests at the bottom pin the cache-format consequence: a
graph-less CACHE_SCHEMA-3 entry is stale, counted by ``scan()`` and
deleted by ``repro cache prune``.
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from functools import lru_cache

import pytest

from repro.circuits.builder import CircuitBuilder
from repro.circuits.netlist import Circuit, CircuitError, Gate, GateOp
from repro.circuits.stdlib import fixed, integer, logic
from repro.circuits.stdlib.float import FloatFormat, fp_add
from repro.core.compiler import OptLevel, compile_circuit
from repro.core.depgraph import (
    DepGraph,
    build_counts,
    clear_registry,
    dep_graph,
    seed_graph,
)
from repro.core.sww import SlidingWindow
from repro.sim.config import HaacConfig
from repro.sim.engine import compiled_arrays


def _logic8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(logic.popcount(b, logic.bitwise_and(b, xs, ys)))
    b.mark_outputs([logic.equals(b, xs, ys), logic.parity(b, xs)])
    b.mark_outputs(logic.mux(b, logic.any_bit(b, ys), xs, ys))
    return b.build("logic8")


def _adder8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(integer.add(b, xs, ys))
    return b.build("adder8")


def _integer8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(integer.sub(b, xs, ys))
    b.mark_outputs(integer.mul(b, xs, ys))
    b.mark_outputs([integer.less_than(b, xs, ys)])
    return b.build("integer8")


def _fixed8():
    b = CircuitBuilder()
    fmt = fixed.FixedFormat(width=8, fraction_bits=3)
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(fixed.fx_mul(b, fmt, xs, ys))
    return b.build("fixed8")


def _float8():
    b = CircuitBuilder()
    fmt = FloatFormat(exponent_bits=4, mantissa_bits=3)
    xs = b.add_garbler_inputs(fmt.width)
    ys = b.add_evaluator_inputs(fmt.width)
    b.mark_outputs(fp_add(b, fmt, xs, ys))
    return b.build("float8")


STDLIB_FAMILIES = {
    "logic8": _logic8,
    "adder8": _adder8,
    "integer8": _integer8,
    "fixed8": _fixed8,
    "float8": _float8,
}

ALL_OPTS = list(OptLevel)

#: Deliberately tiny SWW (64 wires) so windows slide and the
#: window-sync edges of the level partition are actually exercised.
SWW_BYTES = 64 * 16


@lru_cache(maxsize=None)
def _circuit(family: str) -> Circuit:
    return STDLIB_FAMILIES[family]()


@lru_cache(maxsize=None)
def _compiled(family: str, opt: OptLevel):
    config = HaacConfig(n_ges=4, sww_bytes=SWW_BYTES)
    result = compile_circuit(
        _circuit(family), config.window, config.n_ges,
        opt=opt, params=config.schedule_params(),
    )
    return result, config


# ----------------------------------------------------------------------
# Legacy derivations (what the graph replaced), re-implemented here
# ----------------------------------------------------------------------


def _legacy_readers(circuit: Circuit):
    """Per-wire reader positions via the old dict-of-lists walk."""
    readers = defaultdict(list)
    for position, gate in enumerate(circuit.gates):
        for wire in gate.inputs():
            readers[wire].append(position)
    return readers


def _legacy_components(circuit: Circuit):
    """The multicore partitioner's original standalone union-find."""
    parent = list(range(circuit.n_wires))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for gate in circuit.gates:
        for wire in gate.inputs():
            root_a, root_b = find(wire), find(gate.out)
            if root_a != root_b:
                parent[root_a] = root_b

    by_root = {}
    components = []
    for position, gate in enumerate(circuit.gates):
        root = find(gate.out)
        if root not in by_root:
            by_root[root] = len(components)
            components.append([])
        components[by_root[root]].append(position)
    return components


def _reference_engine_levels(n_inputs, capacity, a_of, b_of, ge_of, n_ges):
    """Materialised-reader-list leveler: same edges, different algorithm.

    The production :func:`~repro.core.depgraph.engine_levels` pushes the
    reader-before-evictor constraint forward in one pass; this reference
    builds explicit reader lists and looks every constraint up directly,
    so agreement is evidence about the *edges*, not the implementation.
    """
    n = len(a_of)
    readers = defaultdict(list)
    for p in range(n):
        readers[a_of[p]].append(p)
        if b_of[p] >= 0:
            readers[b_of[p]].append(p)
    level_of = [0] * n
    ge_level = [0] * n_ges
    for p in range(n):
        lvl = ge_level[ge_of[p]]
        for wire in (a_of[p], b_of[p]):
            if wire >= n_inputs:
                lvl = max(lvl, level_of[wire - n_inputs] + 1)
            if wire >= 0:
                # Reader after evictor: an OoR read must not land in an
                # earlier level than the instruction that evicted it.
                evictor = wire + capacity - n_inputs
                if 0 <= evictor < p:
                    lvl = max(lvl, level_of[evictor])
        evicted = n_inputs + p - capacity
        if evicted >= 0:
            if evicted >= n_inputs:
                # WAW on the slot: strictly after the evicted producer.
                lvl = max(lvl, level_of[evicted - n_inputs] + 1)
            for reader in readers[evicted]:
                # Strictly after every earlier reader of the evicted wire.
                if reader < p:
                    lvl = max(lvl, level_of[reader] + 1)
        level_of[p] = lvl
        ge_level[ge_of[p]] = lvl
    return level_of, (max(level_of) + 1) if n else 0


# ----------------------------------------------------------------------
# Graph fields vs legacy derivations, per stdlib family
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(STDLIB_FAMILIES))
class TestGraphMatchesLegacy:
    def test_wire_and_gate_levels(self, family):
        circuit = _circuit(family)
        graph = dep_graph(circuit)
        assert graph.wire_level == circuit.wire_levels()
        assert graph.gate_level == circuit.gate_levels()

    def test_reader_adjacency(self, family):
        circuit = _circuit(family)
        graph = dep_graph(circuit)
        legacy = _legacy_readers(circuit)
        for wire in range(circuit.n_wires):
            assert graph.readers(wire) == legacy.get(wire, [])
        expected_last = [
            legacy[wire][-1] if wire in legacy else -1
            for wire in range(circuit.n_wires)
        ]
        assert graph.last_reader == expected_last

    def test_components(self, family):
        circuit = _circuit(family)
        graph = dep_graph(circuit)
        assert graph.components == _legacy_components(circuit)
        for index, members in enumerate(graph.components):
            for position in members:
                assert graph.component_of[position] == index

    def test_producer_index(self, family):
        circuit = _circuit(family)
        graph = dep_graph(circuit)
        index = graph.producer_index()
        for position, gate in enumerate(circuit.gates):
            assert index[gate.out] == position
            assert graph.producer_pos(gate.out) == position
        for wire in range(circuit.n_inputs):
            assert graph.producer_pos(wire) == -1

    def test_operand_arrays_mirror_gates(self, family):
        circuit = _circuit(family)
        graph = dep_graph(circuit)
        for position, gate in enumerate(circuit.gates):
            assert graph.a_of[position] == gate.a
            assert graph.b_of[position] == gate.b
            assert graph.out_of[position] == gate.out
            assert graph.is_and[position] == (gate.op is GateOp.AND)


# ----------------------------------------------------------------------
# Compiled (renamed) graphs, per family x opt level
# ----------------------------------------------------------------------


@pytest.mark.parametrize("opt", ALL_OPTS, ids=lambda opt: opt.value)
@pytest.mark.parametrize("family", sorted(STDLIB_FAMILIES))
class TestCompiledGraphs:
    def test_streams_carry_the_renamed_graph(self, family, opt):
        result, _ = _compiled(family, opt)
        graph = result.streams.depgraph
        assert graph is not None
        assert graph.renamed
        netlist = result.program.netlist
        assert graph is dep_graph(netlist)
        assert graph.a_of == [gate.a for gate in netlist.gates]
        assert graph.b_of == [gate.b for gate in netlist.gates]
        assert graph.is_and == [
            gate.op is GateOp.AND for gate in netlist.gates
        ]

    def test_engine_levels_match_reference(self, family, opt):
        result, _ = _compiled(family, opt)
        arrays = compiled_arrays(result.streams).ensure_levels()
        expected = _reference_engine_levels(
            arrays.n_inputs, arrays.capacity, arrays.a_of, arrays.b_of,
            arrays.ge_of, arrays.n_ges,
        )
        assert (arrays.level_of, arrays.n_levels) == expected

    def test_oor_flags_match_window_arithmetic(self, family, opt):
        result, config = _compiled(family, opt)
        graph = result.streams.depgraph
        window = SlidingWindow.from_bytes(SWW_BYTES)
        oor_a, oor_b = graph.oor_flags(window.capacity)
        for position in range(graph.n_gates):
            out = graph.n_inputs + position
            assert oor_a[position] == window.is_oor(graph.a_of[position], out)
            b = graph.b_of[position]
            assert oor_b[position] == (b >= 0 and window.is_oor(b, out))


# ----------------------------------------------------------------------
# Memoization, seeding and persistence
# ----------------------------------------------------------------------


class TestMemoization:
    def test_instance_memo_returns_same_object(self):
        circuit = _adder8()
        assert dep_graph(circuit) is dep_graph(circuit)

    def test_registry_shares_graphs_across_equal_instances(self):
        clear_registry()
        first, second = _adder8(), _adder8()
        assert first is not second
        before = build_counts()["graphs"]
        graph = dep_graph(first)
        assert dep_graph(second) is graph
        assert build_counts()["graphs"] - before == 1

    def test_registry_opt_out_builds_fresh(self):
        clear_registry()
        first, second = _adder8(), _adder8()
        assert dep_graph(first, use_registry=False) is not dep_graph(
            second, use_registry=False
        )

    def test_derivations_run_once_per_graph(self):
        graph = DepGraph(_adder8())
        before = build_counts()
        for _ in range(3):
            graph.wire_level, graph.gate_level
            graph.readers(0), graph.last_reader
            graph.components, graph.component_of
        after = build_counts()
        assert after["levels"] - before["levels"] == 1
        assert after["readers"] - before["readers"] == 1
        assert after["components"] - before["components"] == 1

    def test_seed_graph_transfers_wire_levels(self):
        circuit = _adder8()
        source = DepGraph(circuit)
        source.wire_level  # force the derivation on the source
        seeded = seed_graph(circuit, DepGraph(circuit), wire_level_from=source)
        before = build_counts()["levels"]
        assert seeded.wire_level is source.wire_level
        assert build_counts()["levels"] == before  # no recomputation

    def test_one_level_pass_per_cold_compile(self):
        """The reorder pipeline levels once; permutations reuse it."""
        clear_registry()
        config = HaacConfig(n_ges=4, sww_bytes=SWW_BYTES)
        before = build_counts()["levels"]
        compile_circuit(
            _adder8(), config.window, config.n_ges,
            opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
        )
        assert build_counts()["levels"] - before == 1

    def test_pickle_round_trip_renamed(self):
        result, _ = _compiled("adder8", OptLevel.RO_RN_ESW)
        graph = result.streams.depgraph
        state = graph.__getstate__()
        assert state["out_of"] is None  # implicit in renamed form
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.out_of == graph.out_of
        assert clone.a_of == graph.a_of and clone.b_of == graph.b_of
        assert clone.renamed and clone.n_wires == graph.n_wires
        assert clone.wire_level == graph.wire_level
        assert clone.components == graph.components

    def test_memo_attr_dropped_on_circuit_pickle(self):
        circuit = _adder8()
        dep_graph(circuit)
        clone = pickle.loads(pickle.dumps(circuit))
        assert getattr(clone, "_depgraph_cache", None) is None


# ----------------------------------------------------------------------
# Construction is validation
# ----------------------------------------------------------------------


class TestValidationWitness:
    def _invalid(self, gates, n_inputs=2, outputs=(2,)):
        # Bypass from_gates (which validates eagerly) to hand the graph
        # a malformed netlist directly.
        return Circuit(
            n_garbler_inputs=n_inputs, n_evaluator_inputs=0,
            outputs=list(outputs), gates=gates, name="bad",
        )

    def test_read_before_defined(self):
        circuit = self._invalid([
            Gate(GateOp.XOR, 0, 3, 2),  # reads wire 3 before gate 1 makes it
            Gate(GateOp.AND, 0, 1, 3),
        ])
        with pytest.raises(CircuitError, match="before it is defined"):
            DepGraph(circuit)

    def test_out_of_bounds_wire(self):
        circuit = self._invalid([Gate(GateOp.XOR, 0, 9, 2)])
        with pytest.raises(CircuitError, match="n_wires"):
            DepGraph(circuit)

    def test_ssa_violation(self):
        circuit = self._invalid([
            Gate(GateOp.XOR, 0, 1, 2),
            Gate(GateOp.AND, 0, 1, 2),
        ])
        with pytest.raises(CircuitError, match="defined twice"):
            DepGraph(circuit)

    def test_input_overwrite(self):
        circuit = self._invalid([Gate(GateOp.XOR, 0, 1, 1)])
        with pytest.raises(CircuitError, match="overwrites input"):
            DepGraph(circuit)

    def test_undefined_output(self):
        circuit = self._invalid([Gate(GateOp.XOR, 0, 1, 2)], outputs=(9,))
        with pytest.raises(CircuitError, match="output wire"):
            DepGraph(circuit)

    def test_unused_wires_tracked(self):
        # A never-read gate output still appears with an empty reader
        # list and last_reader -1 (the ESW spent-wire case).
        circuit = self._invalid(
            [Gate(GateOp.XOR, 0, 1, 2), Gate(GateOp.AND, 0, 1, 3)],
            outputs=(3,),
        )
        graph = DepGraph(circuit)
        assert graph.readers(2) == []
        assert graph.last_reader[2] == -1

    def test_window_analyses_require_renamed_form(self):
        # Valid but non-renamed (out-of-order output ids).
        circuit = Circuit(
            n_garbler_inputs=2, n_evaluator_inputs=0, outputs=[2, 3],
            gates=[Gate(GateOp.XOR, 0, 1, 3), Gate(GateOp.AND, 0, 3, 2)],
            name="unrenamed",
        )
        graph = DepGraph(circuit)
        assert not graph.renamed
        with pytest.raises(CircuitError, match="renamed"):
            graph.oor_flags(64)


# ----------------------------------------------------------------------
# Cache-schema consequence: v3 entries (no graph, no tie-break axis)
# ----------------------------------------------------------------------


class TestSchemaV4Staleness:
    """CACHE_SCHEMA v4 entries carry the dependence graph and key the
    greedy tie-break; anything written under v3 is unreachable and must
    census as stale and be deleted by ``repro cache prune``."""

    def test_schema_is_v4(self):
        from repro.core.progcache import CACHE_SCHEMA

        assert CACHE_SCHEMA == 4

    def _store_with_v3_entry(self, tmp_path):
        from repro.core.progcache import ProgramCache

        config = HaacConfig(n_ges=4, sww_bytes=SWW_BYTES)
        store = ProgramCache(tmp_path)
        result = compile_circuit(
            _adder8(), config.window, config.n_ges,
            opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
            cache=store,
        )
        v3_key = "ab" * 32
        (tmp_path / f"{v3_key}.pkl").write_bytes(pickle.dumps({
            "schema": 3, "key": v3_key, "result": result,
        }))
        return store

    def test_v3_entry_classified_stale(self, tmp_path):
        store = self._store_with_v3_entry(tmp_path)
        census = store.scan()
        assert census.live == 1
        assert census.stale == 1
        assert census.corrupt == 0

    def test_cli_prune_removes_v3_entry(self, tmp_path, capsys):
        from repro.cli import main

        store = self._store_with_v3_entry(tmp_path)
        assert main(["cache", "prune", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale-schema and 0 corrupt entries" in out
        after = store.scan()
        assert (after.live, after.stale, after.corrupt) == (1, 0, 0)
