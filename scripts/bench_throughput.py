#!/usr/bin/env python
"""Garbling/evaluation throughput per label-hash backend.

Measures gates-per-second for the scalar reference and the batched
NumPy backend (when available) on a stdlib circuit, prints a summary
and writes ``BENCH_throughput.json`` in the stable
``repro.bench_throughput/v1`` schema so successive PRs can track the
perf trajectory.

Usage::

    python scripts/bench_throughput.py                       # AES-128, full
    python scripts/bench_throughput.py --circuit mixed8
    python scripts/bench_throughput.py --quick --json out.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.gc.backends.throughput import (  # noqa: E402
    BENCH_CIRCUITS,
    build_bench_circuit,
    measure_throughput,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--circuit",
        default="aes128",
        choices=sorted(BENCH_CIRCUITS),
        help="stdlib circuit to garble (default: aes128)",
    )
    parser.add_argument(
        "--backends",
        default="scalar,numpy",
        help="comma-separated backend names (default: scalar,numpy)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small circuit, one repeat (smoke-test lane)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_throughput.json",
        help="output path for the JSON report (default: BENCH_throughput.json)",
    )
    args = parser.parse_args(argv)

    circuit_name = "mixed8" if args.quick and args.circuit == "aes128" else args.circuit
    repeats = 1 if args.quick else args.repeats
    circuit = build_bench_circuit(circuit_name)
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    report = measure_throughput(circuit, backends=backends, repeats=repeats)

    out_path = pathlib.Path(args.json)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    info = report["circuit"]
    print(
        f"circuit {info['name']}: {info['gates']} gates "
        f"({info['and_gates']} AND, {info['levels']} levels)"
    )
    for name, entry in report["backends"].items():
        garble = entry["garble"]
        evaluate = entry["evaluate"]
        print(
            f"  {name:>8}: garble {garble['gates_per_s']:>12,.0f} gates/s "
            f"({garble['seconds']:.3f}s)  evaluate "
            f"{evaluate['gates_per_s']:>12,.0f} gates/s ({evaluate['seconds']:.3f}s)"
        )
    for name, speedup in report["speedup_vs_scalar"].items():
        print(
            f"  {name} vs scalar: {speedup['garble']:.1f}x garble, "
            f"{speedup['evaluate']:.1f}x evaluate"
        )
    for entry in report["skipped"]:
        print(f"  skipped {entry['backend']}: {entry['reason']}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
