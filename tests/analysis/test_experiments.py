"""Experiment drivers: every table/figure regenerates with sane shapes."""

import pytest

from repro.analysis.experiments import (
    fig6_compiler_opts,
    fig7_ordering_sww,
    fig8_ge_scaling,
    fig9_energy,
    fig10_plaintext,
    table1_ppc_comparison,
    table2_characteristics,
    table3_wire_traffic,
    table4_area_power,
    table5_prior_work,
)
from repro.analysis.report import fmt, geomean, render_table


class TestReport:
    def test_render_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_fmt(self):
        assert fmt(True) == "yes"
        assert fmt(1234567.0) == "1.23e+06"
        assert fmt(0.25) == "0.25"
        assert fmt("x") == "x"
        assert fmt(0.0) == "0"

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([]) == 0.0
        assert geomean([0, 4]) == pytest.approx(4.0)  # zeros filtered


class TestStaticTables:
    def test_table1(self):
        result = table1_ppc_comparison()
        assert len(result.rows) == 4
        gcs = result.rows[-1]
        assert gcs[0] == "GCs"
        assert gcs[3] == "Yes"  # arbitrary compute

    def test_table4_matches_paper(self):
        result = table4_area_power()
        by_name = {row[0]: row for row in result.rows}
        assert by_name["Half-Gate"][1] == pytest.approx(2.15)
        assert by_name["Total HAAC"][1] == pytest.approx(4.33, abs=0.02)
        assert by_name["Total HAAC"][2] == pytest.approx(1502, abs=1)
        assert "0.35" in result.notes


class TestWorkloadTables:
    def test_table2_quick(self):
        result = table2_characteristics(quick=True)
        assert len(result.rows) == 3
        relu = next(row for row in result.rows if row[0] == "ReLU")
        assert relu[1] == 2  # two levels
        assert relu[4] > 90  # AND share

    def test_table3_quick(self):
        result = table3_wire_traffic(quick=True)
        for row in result.rows:
            live_seg, live_full = row[1], row[2]
            total_seg, total_full = row[5], row[6]
            assert total_seg == pytest.approx(row[1] + row[3], rel=1e-6)
            assert total_full == pytest.approx(row[2] + row[4], rel=1e-6)
            assert row[7] in ("seg", "full")

    def test_table5_quick(self):
        result = table5_prior_work(quick=True)
        assert result.rows, "no prior-work rows produced"
        for row in result.rows:
            ours = row[3]
            assert ours > 0
            assert row[4] == pytest.approx(row[2] / ours, rel=1e-6)


class TestFigures:
    def test_fig6_quick(self):
        result = fig6_compiler_opts(quick=True)
        assert len(result.rows) == 3
        for row in result.rows:
            # ESW never hurts relative to RO+RN.
            assert row[3] >= row[2] * 0.999

    def test_fig7_small(self):
        result = fig7_ordering_sww(benchmarks=("DotProd",))
        assert len(result.rows) == 9  # 3 orders x 3 sizes
        # Wire traffic should not increase with a larger SWW.
        by_order = {}
        for row in result.rows:
            by_order.setdefault(row[1], []).append(row[4])
        for order, series in by_order.items():
            assert series[0] >= series[-1] * 0.999

    def test_fig8_quick(self):
        result = fig8_ge_scaling(quick=True, ge_counts=(1, 4))
        scaling = result.extras["scaling"]
        for name, by_dram in scaling.items():
            for dram, speedups in by_dram.items():
                assert speedups[-1] >= speedups[0] * 0.999, (name, dram)

    def test_fig8_hbm_at_least_ddr4(self):
        result = fig8_ge_scaling(quick=True, ge_counts=(16,))
        scaling = result.extras["scaling"]
        for name, by_dram in scaling.items():
            assert by_dram["HBM2"][0] >= by_dram["DDR4-4400"][0] * 0.98

    def test_fig9_quick(self):
        result = fig9_energy(quick=True)
        for row in result.rows:
            shares = row[1:6]
            assert sum(shares) == pytest.approx(100.0, abs=0.5)
            assert row[6] > 0  # efficiency multiplier
        halfgate_shares = [row[1] for row in result.rows]
        assert max(halfgate_shares) > 30

    def test_fig10_quick(self):
        result = fig10_plaintext(quick=True)
        for row in result.rows:
            cpu, ddr4, hbm2 = row[1], row[2], row[3]
            assert cpu > ddr4 >= hbm2  # HAAC always beats the CPU;
            # HBM2 never slower than DDR4.

    def test_rendering_does_not_crash(self):
        for result in (
            table1_ppc_comparison(),
            table4_area_power(),
        ):
            text = result.render()
            assert result.name.split(":")[0] in text
