"""Backend layer: registry, vectorized AES, batched garbling parity.

The contract under test: every backend and both schedulers (per-gate
reference vs. level-batched) produce *bitwise-identical* garbled tables,
wire labels, decode bits and hash accounting, across every stdlib
circuit family.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits.builder import CircuitBuilder
from repro.circuits.stdlib import fixed, integer, logic
from repro.circuits.stdlib.aes_circuit import build_aes128_circuit
from repro.circuits.stdlib.float import FloatFormat, fp_add
from repro.gc.backends import (
    BACKEND_ENV_VAR,
    BackendUnavailable,
    available_backends,
    get_backend,
    registered_backends,
    resolve_backend,
)
from repro.gc.backends import base as base_module
from repro.gc.backends import numpy_backend as numpy_backend_module
from repro.gc.evaluate import evaluate_circuit, evaluate_circuit_batched
from repro.gc.garble import garble_circuit, garble_circuit_batched
from repro.gc.hashing import fixed_key_hash, rekeyed_hash


def _logic8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(logic.popcount(b, logic.bitwise_and(b, xs, ys)))
    b.mark_outputs([logic.equals(b, xs, ys), logic.parity(b, xs)])
    b.mark_outputs(logic.mux(b, logic.any_bit(b, ys), xs, ys))
    return b.build("logic8")


def _adder8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(integer.add(b, xs, ys))
    return b.build("adder8")


def _integer8():
    b = CircuitBuilder()
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(integer.sub(b, xs, ys))
    b.mark_outputs(integer.mul(b, xs, ys))
    b.mark_outputs([integer.less_than(b, xs, ys)])
    return b.build("integer8")


def _fixed8():
    b = CircuitBuilder()
    fmt = fixed.FixedFormat(width=8, fraction_bits=3)
    xs = b.add_garbler_inputs(8)
    ys = b.add_evaluator_inputs(8)
    b.mark_outputs(fixed.fx_mul(b, fmt, xs, ys))
    return b.build("fixed8")


def _float8():
    b = CircuitBuilder()
    fmt = FloatFormat(exponent_bits=4, mantissa_bits=3)
    xs = b.add_garbler_inputs(fmt.width)
    ys = b.add_evaluator_inputs(fmt.width)
    b.mark_outputs(fp_add(b, fmt, xs, ys))
    return b.build("float8")


STDLIB_CIRCUITS = {
    "logic8": _logic8,
    "adder8": _adder8,
    "integer8": _integer8,
    "fixed8": _fixed8,
    "float8": _float8,
}


def _random_circuit(rng, n_inputs=10, n_gates=120):
    """Random well-formed circuit (mirrors the conftest helper)."""
    from repro.circuits.netlist import Circuit, Gate, GateOp

    gates = []
    n_wires = n_inputs
    for _ in range(n_gates):
        roll = rng.random()
        a = rng.randrange(n_wires)
        if roll < 0.1:
            gates.append(Gate(GateOp.INV, a, -1, n_wires))
        else:
            b = rng.randrange(n_wires)
            op = GateOp.AND if roll < 0.5 else GateOp.XOR
            gates.append(Gate(op, a, b, n_wires))
        n_wires += 1
    outputs = [n_wires - 1 - i for i in range(max(1, n_gates // 8))]
    half = n_inputs // 2
    return Circuit.from_gates(half, n_inputs - half, gates, outputs, "random")


def _assert_batched_matches_reference(circuit, backend, rekeyed=True, seed=11):
    reference = garble_circuit(circuit, seed=seed, rekeyed=rekeyed)
    batched = garble_circuit_batched(
        circuit, seed=seed, rekeyed=rekeyed, backend=backend
    )
    assert batched.r == reference.r
    assert batched.zero_labels == reference.zero_labels
    assert batched.garbled.tables == reference.garbled.tables
    assert batched.garbled.decode_bits == reference.garbled.decode_bits
    assert batched.hasher.calls == reference.hasher.calls
    assert batched.hasher.key_expansions == reference.hasher.key_expansions

    rng = random.Random(seed)
    garbler_bits = [rng.getrandbits(1) for _ in range(circuit.n_garbler_inputs)]
    evaluator_bits = [rng.getrandbits(1) for _ in range(circuit.n_evaluator_inputs)]
    inputs = [
        reference.input_label(wire, bit)
        for wire, bit in enumerate(garbler_bits + evaluator_bits)
    ]
    want = evaluate_circuit(circuit, reference.garbled, inputs, rekeyed=rekeyed)
    got = evaluate_circuit_batched(
        circuit, batched.garbled, inputs, rekeyed=rekeyed, backend=backend
    )
    assert got.output_labels == want.output_labels
    assert got.output_bits == want.output_bits
    assert got.output_bits == circuit.eval_plain(garbler_bits, evaluator_bits)
    assert got.hash_calls == want.hash_calls
    assert got.key_expansions == want.key_expansions


class TestRegistry:
    def test_scalar_always_registered_and_available(self):
        assert "scalar" in registered_backends()
        assert "scalar" in available_backends()
        assert get_backend("scalar").name == "scalar"

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendUnavailable, match="unknown"):
            get_backend("cuda")

    def test_resolve_accepts_instances(self):
        backend = get_backend("scalar")
        assert resolve_backend(backend) is backend

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
        assert resolve_backend(None).name == "scalar"

    def test_env_var_overrides_explicit_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
        assert resolve_backend("auto").name == "scalar"

    def test_auto_resolution_returns_something(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name in available_backends()


class TestHashParity:
    @pytest.mark.parametrize("rekeyed", [True, False])
    def test_backends_match_scalar_hash(self, rekeyed):
        rng = random.Random(0xBEEF)
        labels = [rng.getrandbits(128) for _ in range(257)]
        tweaks = [rng.getrandbits(64) for _ in range(257)]
        scalar_fn = rekeyed_hash if rekeyed else fixed_key_hash
        want = [scalar_fn(label, tweak) for label, tweak in zip(labels, tweaks)]
        for name in available_backends():
            got = get_backend(name).hash_labels(labels, tweaks, rekeyed)
            assert got == want, f"backend {name} diverges from scalar hash"

    def test_empty_batch(self):
        for name in available_backends():
            assert get_backend(name).hash_labels([], [], True) == []

    def test_mismatched_lengths_raise(self):
        for name in available_backends():
            with pytest.raises(ValueError):
                get_backend(name).hash_labels([1, 2], [0], True)


class TestBatchedGarbling:
    @pytest.mark.parametrize("circuit_name", sorted(STDLIB_CIRCUITS))
    def test_batched_matches_reference_on_stdlib(self, circuit_name):
        circuit = STDLIB_CIRCUITS[circuit_name]()
        for backend in available_backends():
            _assert_batched_matches_reference(circuit, backend)

    def test_fixed_key_mode_matches(self):
        circuit = _integer8()
        for backend in available_backends():
            _assert_batched_matches_reference(circuit, backend, rekeyed=False)

    def test_random_circuits_match(self, rng):
        for trial in range(3):
            circuit = _random_circuit(rng, n_inputs=10, n_gates=120)
            for backend in available_backends():
                _assert_batched_matches_reference(circuit, backend, seed=trial)

    @pytest.mark.slow
    def test_batched_matches_reference_on_aes128(self):
        circuit = build_aes128_circuit()
        backends = available_backends()
        # Cross-check the fastest available backend against the scalar
        # reference on the paper's flagship garbling benchmark.
        backend = "numpy" if "numpy" in backends else "scalar"
        _assert_batched_matches_reference(circuit, backend)


class TestIntegration:
    def test_two_party_session_matches_reference_path(self):
        from repro.gc.protocol import run_two_party

        circuit = _integer8()
        garbler_bits = [1, 0, 1, 1, 0, 0, 1, 0]
        evaluator_bits = [0, 1, 1, 0, 1, 0, 0, 1]
        want = run_two_party(circuit, garbler_bits, evaluator_bits, seed=9)
        for backend in available_backends() + ["auto"]:
            got = run_two_party(
                circuit, garbler_bits, evaluator_bits, seed=9, backend=backend
            )
            assert got.output_bits == want.output_bits
            assert got.traffic == want.traffic
            assert got.total_bytes == want.total_bytes
            assert got.hash_calls_evaluator == want.hash_calls_evaluator

    def test_functional_machine_accepts_gc_backend(self):
        from repro.core.compiler import OptLevel, compile_circuit
        from repro.sim.config import HaacConfig
        from repro.sim.functional import run_functional

        circuit = _adder8()
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
        result = compile_circuit(
            circuit, config.window, config.n_ges,
            opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
        )
        bits_g = [1, 1, 0, 0, 1, 0, 1, 0]
        bits_e = [0, 1, 0, 1, 1, 1, 0, 0]
        g2, e2 = result.lowered.adapt_inputs(bits_g, bits_e)
        want = run_functional(result.streams, g2, e2, seed=3)
        for backend in available_backends() + ["auto"]:
            got = run_functional(result.streams, g2, e2, seed=3, gc_backend=backend)
            assert got.output_bits == want.output_bits
            assert got.output_labels == want.output_labels
        # HaacConfig.gc_backend is honoured when the config is passed.
        via_config = run_functional(
            result.streams, g2, e2, seed=3,
            config=config.with_gc_backend("auto"),
        )
        assert via_config.output_labels == want.output_labels


class TestNumpyFallback:
    def test_numpy_unavailable_raises_and_auto_falls_back(self, monkeypatch):
        monkeypatch.setattr(numpy_backend_module, "_np", None)
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        base_module.reset_warn_once()
        with pytest.raises(BackendUnavailable, match="NumPy"):
            get_backend("numpy")
        assert "numpy" not in available_backends()
        with pytest.warns(RuntimeWarning, match="degraded to 'scalar'"):
            assert resolve_backend(None).name == "scalar"
        assert resolve_backend("auto").name == "scalar"
        # The batched entry points still work (and still match the
        # reference) with auto resolution.
        circuit = _adder8()
        _assert_batched_matches_reference(circuit, None)

    def test_explicit_numpy_request_fails_loudly(self, monkeypatch):
        monkeypatch.setattr(numpy_backend_module, "_np", None)
        circuit = _adder8()
        with pytest.raises(BackendUnavailable):
            garble_circuit_batched(circuit, backend="numpy")
