"""The ``repro bench <suite>`` API: one entry point for every benchmark.

Five suites share one :class:`~repro.bench.runner.BenchRunner` (common
``--quick``/``--repeats``/``--json``/``--out`` flags, uniform schema
header, merge-into-``BENCH_throughput.json`` semantics in one place):

* ``throughput`` -- garbling/evaluation gates-per-second per backend;
* ``sim``        -- timing-simulator models, engines, batched grid;
* ``protocol``   -- streamed vs monolithic two-party session latency;
* ``service``    -- concurrent-session multiplexer throughput;
* ``scenarios``  -- queue x bandwidth scenario scan (standalone
  artifact; ``--store`` makes it resumable through the
  content-addressed :class:`repro.store.ResultStore`).

The historical ``scripts/bench_*.py`` entry points are deprecated shims
forwarding here.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from . import protocol, scenarios, service, sim, throughput
from .runner import BenchRunner, THROUGHPUT_SCHEMA, add_common_arguments

__all__ = [
    "BenchRunner",
    "THROUGHPUT_SCHEMA",
    "SUITES",
    "add_bench_subparsers",
    "main",
]

#: suite name -> module with HELP / DEFAULT_OUT / add_arguments / run.
SUITES = {
    "throughput": throughput,
    "sim": sim,
    "protocol": protocol,
    "service": service,
    "scenarios": scenarios,
}

#: Suites whose grid points persist in the ResultStore (get --store).
_STORE_SUITES = {"scenarios"}


def add_bench_subparsers(parser: argparse.ArgumentParser) -> None:
    """Attach one subparser per suite (used by ``repro bench``)."""
    sub = parser.add_subparsers(dest="suite", required=True)
    for name, module in SUITES.items():
        suite_parser = sub.add_parser(name, help=module.HELP)
        add_common_arguments(
            suite_parser, module.DEFAULT_OUT, store=name in _STORE_SUITES
        )
        module.add_arguments(suite_parser)


def run_suite(args: argparse.Namespace) -> int:
    return SUITES[args.suite].run(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench", description=__doc__
    )
    add_bench_subparsers(parser)
    return run_suite(parser.parse_args(argv))
