"""HAAC program container.

A :class:`HaacProgram` is the compiler's output for one circuit: a list
of :class:`~repro.core.isa.Instruction` in execution order, plus the
metadata the hardware controllers and the simulator need (input count,
output addresses, the netlist the program was derived from).

Programs obey the ISA contract: instruction ``p`` writes physical wire
address ``n_inputs + p`` (sequential outputs), so no output address is
encoded.  ``netlist`` is the *final* (lowered, reordered, renamed)
circuit whose gate ``p`` corresponds to instruction ``p``; garbling that
netlist yields tables in exactly the order the per-GE table queues pop
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuits.netlist import Circuit, GateOp
from .isa import HaacOp, Instruction

__all__ = ["HaacProgram", "ProgramError"]

_OP_MAP = {GateOp.AND: HaacOp.AND, GateOp.XOR: HaacOp.XOR}


class ProgramError(ValueError):
    """Raised when a program violates the ISA contract."""


@dataclass
class HaacProgram:
    """A compiled HAAC program.

    Attributes
    ----------
    instructions:
        Execution-ordered instruction list; instruction ``p`` writes
        address ``n_inputs + p``.
    n_inputs:
        Number of preloaded input wire addresses ``[0, n_inputs)``.
    outputs:
        Physical addresses of the circuit outputs.
    netlist:
        The final netlist (gate ``p`` == instruction ``p``); used for
        garbling and functional validation.
    name / applied_passes:
        Provenance for reports.
    """

    instructions: List[Instruction]
    n_inputs: int
    outputs: List[int]
    netlist: Circuit
    name: str = "haac"
    applied_passes: List[str] = field(default_factory=list)

    @property
    def n_wires(self) -> int:
        return self.n_inputs + len(self.instructions)

    def out_addr(self, position: int) -> int:
        """Physical output address of instruction ``position``."""
        return self.n_inputs + position

    def _counts(self) -> "tuple[int, int, int]":
        """(AND, XOR, live) instruction counts, memoized.

        Every ``simulate`` call charges traffic by these counts; at
        AES scale the naive generator sums cost more than the replay
        itself.  Instructions are immutable after construction (every
        pass builds a new program), so the counts are cached keyed by
        the instruction-list length as a cheap tamper tripwire --
        mirroring ``circuit_digest``'s memo.
        """
        cached = self.__dict__.get("_counts_cache")
        if cached is not None and cached[0] == len(self.instructions):
            return cached[1]
        n_and = n_xor = n_live = 0
        for instr in self.instructions:
            if instr.op is HaacOp.AND:
                n_and += 1
            elif instr.op is HaacOp.XOR:
                n_xor += 1
            if instr.live:
                n_live += 1
        counts = (n_and, n_xor, n_live)
        self._counts_cache = (len(self.instructions), counts)
        return counts

    @property
    def n_and(self) -> int:
        return self._counts()[0]

    @property
    def n_xor(self) -> int:
        return self._counts()[1]

    @property
    def n_live(self) -> int:
        return self._counts()[2]

    def live_fraction(self) -> float:
        """Fraction of outputs written back to DRAM (Table 2 spent = 1-live)."""
        if not self.instructions:
            return 0.0
        return self.n_live / len(self.instructions)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, oor_allowed: bool = True) -> None:
        """Check the ISA contract against the carried netlist.

        * instruction count matches the netlist gate count;
        * netlist gate ``p`` writes wire ``n_inputs + p`` (renamed form);
        * instruction operands match the gate's input wires unless they
          are the OoR sentinel (``oor_allowed``);
        * ops correspond (netlist has no INV at this stage).
        """
        if len(self.instructions) != len(self.netlist.gates):
            raise ProgramError(
                f"{len(self.instructions)} instructions vs "
                f"{len(self.netlist.gates)} netlist gates"
            )
        if self.n_inputs != self.netlist.n_inputs:
            raise ProgramError("input count mismatch with netlist")
        for position, (instr, gate) in enumerate(
            zip(self.instructions, self.netlist.gates)
        ):
            if gate.op is GateOp.INV:
                raise ProgramError(
                    f"netlist gate {position} is INV; lower before emitting"
                )
            if gate.out != self.out_addr(position):
                raise ProgramError(
                    f"gate {position} writes {gate.out}, ISA requires "
                    f"{self.out_addr(position)} (run renaming)"
                )
            if _OP_MAP[gate.op] is not instr.op:
                raise ProgramError(f"op mismatch at instruction {position}")
            for operand, wire in ((instr.wa, gate.a), (instr.wb, gate.b)):
                if operand == wire:
                    continue
                if oor_allowed and operand == 0:
                    continue
                raise ProgramError(
                    f"instruction {position} operand {operand} does not "
                    f"match netlist wire {wire}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_netlist(
        netlist: Circuit,
        name: Optional[str] = None,
        applied_passes: Optional[List[str]] = None,
    ) -> "HaacProgram":
        """Emit instructions 1:1 from a lowered, renamed netlist.

        All live bits default to True (everything written back); the ESW
        pass clears them.  Operand addresses are the netlist wire ids;
        stream generation later replaces OoR operands with the sentinel.
        """
        instructions: List[Instruction] = []
        for position, gate in enumerate(netlist.gates):
            if gate.op is GateOp.INV:
                raise ProgramError("lower INV gates before emitting a program")
            if gate.out != netlist.n_inputs + position:
                raise ProgramError(
                    "netlist is not in renamed form; run renaming first"
                )
            instructions.append(
                Instruction(
                    op=_OP_MAP[gate.op],
                    wa=gate.a,
                    wb=gate.b,
                    live=True,
                    source_gate=position,
                )
            )
        return HaacProgram(
            instructions=instructions,
            n_inputs=netlist.n_inputs,
            outputs=list(netlist.outputs),
            netlist=netlist,
            name=name or netlist.name,
            applied_passes=list(applied_passes or []),
        )

    def stats(self) -> Dict[str, float]:
        return {
            "instructions": len(self.instructions),
            "and": self.n_and,
            "xor": self.n_xor,
            "live": self.n_live,
            "live_pct": 100.0 * self.live_fraction(),
        }
