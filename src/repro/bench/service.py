"""``repro bench service`` -- concurrent-session service throughput.

Two transports, gated identically:

* ``--transport memory`` -- N identical level-streamed sessions through
  the in-process :class:`repro.serve.SessionMultiplexer` cooperative
  scheduler (the ``"concurrent"`` sub-section);
* ``--transport process`` -- the same sessions through the
  out-of-process :class:`repro.serve.Supervisor`, one OS process per
  party over a kernel socketpair (the ``"process"`` sub-section);
* ``--transport both`` (default) -- both, so one run keeps every gated
  key fresh.

Before reporting any numbers, every concurrent result -- output bits
*and* transcript digest -- is asserted bit-identical to a solo
``run_streamed`` of the same session (the process path additionally
hands the supervisor the solo digest as its retry re-verification
reference): throughput figures for a protocol that corrupts under
concurrency are worthless.  Merges into ``BENCH_throughput.json`` under
``"service"`` (sub-schema ``repro.bench_service/v2``), carrying over
whichever transport sub-section this invocation did not refresh so a
single-transport run never drops the other lane from the regression
gate.  A single service run is timed (``--repeats`` is accepted for
flag uniformity but unused -- the scheduler percentiles already
aggregate many sessions).
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, Optional, Sequence

from ..gc.protocol import TwoPartySession
from ..serve import SessionMultiplexer, SessionSpec, Supervisor
from .runner import BenchRunner, add_common_arguments
from .protocol import full_circuit, quick_circuit, session_bits

HELP = "concurrent-session service throughput (multiplexer + supervisor)"
DEFAULT_OUT = "BENCH_throughput.json"

SERVICE_SCHEMA = "repro.bench_service/v2"

#: Transport sub-sections the gate may track; used to carry the one a
#: single-transport run did not refresh over from the prior artifact.
_TRANSPORT_KEYS = ("concurrent", "process")


def _solo_reference(circuit, garbler_bits, evaluator_bits):
    return TwoPartySession(circuit, seed=7, backend="auto").run_streamed(
        garbler_bits, evaluator_bits
    )


def _assert_identical(session_id: str, result, error, solo) -> None:
    if result is None:
        raise AssertionError(
            f"session {session_id} failed under concurrency: {error!r}"
        )
    if result.output_bits != solo.output_bits:
        raise AssertionError(
            f"session {session_id} output diverged from the solo run -- "
            "refusing to report benchmark numbers for a protocol that "
            "corrupts under concurrency"
        )
    if result.transcript_digest != solo.transcript_digest:
        raise AssertionError(
            f"session {session_id} transcript diverged from the solo "
            "run under concurrency"
        )


def measure_service(
    quick: bool = False,
    sessions: Optional[int] = None,
    concurrency: int = 4,
    window: int = 1,
) -> dict:
    """Benchmark the multiplexer; returns the ``"service"`` section."""
    circuit = quick_circuit() if quick else full_circuit()
    if sessions is None:
        sessions = 8 if quick else 4
    garbler_bits, evaluator_bits = session_bits(circuit)

    # Ground truth: the same session, solo.
    solo = _solo_reference(circuit, garbler_bits, evaluator_bits)

    mux = SessionMultiplexer(
        max_concurrent=concurrency,
        max_pending=max(0, sessions - concurrency),
        max_inflight_levels=window,
    )
    handles = [
        mux.submit(
            TwoPartySession(circuit, seed=7, backend="auto"),
            garbler_bits,
            evaluator_bits,
            session_id=f"s{index}",
        )
        for index in range(sessions)
    ]
    stats = mux.run_until_complete()

    for handle in handles:
        _assert_identical(
            handle.session_id, handle.result, handle.error, solo
        )

    summary = stats.summary()
    return {
        "schema": SERVICE_SCHEMA,
        "concurrent": {
            "circuit": circuit.name,
            "sessions": sessions,
            "concurrency": concurrency,
            "window": window,
            "bit_identical_to_solo": True,
            "wall_s": summary["wall_s"],
            "sessions_per_s": summary["sessions_per_s"],
            "levels_per_s_mean": summary["levels_per_s_mean"],
            "first_level_p50_s": summary["first_level_p50_s"],
            "first_level_p95_s": summary["first_level_p95_s"],
            "queue_wait_p50_s": summary["queue_wait_p50_s"],
            "queue_wait_p95_s": summary["queue_wait_p95_s"],
        },
    }


def measure_service_process(
    quick: bool = False,
    sessions: Optional[int] = None,
    concurrency: int = 2,
    deadline_s: float = 120.0,
    retries: int = 1,
) -> dict:
    """Benchmark the supervisor; returns the ``"process"`` sub-section.

    Every session runs as two supervised OS processes; the solo
    transcript digest doubles as the supervisor's retry re-verification
    reference, so a number is only ever reported for sessions proven
    bit-identical to fault-free.
    """
    circuit = quick_circuit() if quick else full_circuit()
    if sessions is None:
        sessions = 8 if quick else 4
    garbler_bits, evaluator_bits = session_bits(circuit)

    solo = _solo_reference(circuit, garbler_bits, evaluator_bits)

    supervisor = Supervisor(
        max_concurrent=concurrency,
        max_pending=max(0, sessions - concurrency),
        deadline_s=deadline_s,
        retries=retries,
    )
    handles = [
        supervisor.submit(SessionSpec(
            circuit,
            garbler_bits,
            evaluator_bits,
            seed=7,
            backend="auto",
            session_id=f"p{index}",
            reference_digest=solo.transcript_digest,
        ))
        for index in range(sessions)
    ]
    stats = supervisor.run_until_complete()

    for handle in handles:
        _assert_identical(
            handle.session_id, handle.result, handle.error, solo
        )

    summary = stats.summary()
    return {
        "circuit": circuit.name,
        "sessions": sessions,
        "concurrency": concurrency,
        "deadline_s": deadline_s,
        "retry_budget": retries,
        "bit_identical_to_solo": True,
        "wall_s": summary["wall_s"],
        "sessions_per_s": summary["sessions_per_s"],
        "levels_per_s_mean": summary["levels_per_s_mean"],
        "first_level_p50_s": summary["first_level_p50_s"],
        "first_level_p95_s": summary["first_level_p95_s"],
        "queue_wait_p50_s": summary["queue_wait_p50_s"],
        "queue_wait_p95_s": summary["queue_wait_p95_s"],
        "retries": summary["retries"],
        "worker_restarts": summary["worker_restarts"],
    }


def _render_block(title: str, info: Dict) -> str:
    lines = [
        f"{title} -- circuit {info['circuit']}: {info['sessions']} "
        f"sessions on {info['concurrency']} slots, all bit-identical "
        "to solo",
        f"  throughput: {info['sessions_per_s']:.1f} sessions/s, "
        f"{info['levels_per_s_mean']:.0f} levels/s per session, "
        f"{info['wall_s'] * 1000:.1f} ms wall",
        f" first level: p50 {info['first_level_p50_s'] * 1000:.1f} ms, "
        f"p95 {info['first_level_p95_s'] * 1000:.1f} ms",
        f"  queue wait: p50 {info['queue_wait_p50_s'] * 1000:.2f} ms, "
        f"p95 {info['queue_wait_p95_s'] * 1000:.2f} ms",
    ]
    if "retries" in info:
        lines.append(
            f" supervision: {info['retries']} retries, "
            f"{info['worker_restarts']} worker restarts, deadline "
            f"{info['deadline_s']:g}s"
        )
    return "\n".join(lines)


def render(section: Dict) -> str:
    blocks = []
    if "concurrent" in section:
        blocks.append(_render_block("multiplexer", section["concurrent"]))
    if "process" in section:
        blocks.append(_render_block("supervisor", section["process"]))
    return "\n".join(blocks)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sessions",
        type=int,
        default=None,
        help="sessions to serve (default: 4, or 8 with --quick)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=4, help="scheduler slots"
    )
    parser.add_argument(
        "--window",
        type=int,
        default=1,
        help="max in-flight AND levels per session (memory transport)",
    )
    parser.add_argument(
        "--transport",
        choices=["memory", "process", "both"],
        default="both",
        help="which service substrate to measure (default both, so one "
        "run refreshes every gated service.* key)",
    )
    parser.add_argument(
        "--deadline-s",
        type=float,
        default=120.0,
        help="process transport: per-session watchdog deadline",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="process transport: failed-session relaunch budget",
    )


def run(args: argparse.Namespace) -> int:
    runner = BenchRunner.from_args(args)
    section: Dict[str, object] = {"schema": SERVICE_SCHEMA}
    if args.transport in ("memory", "both"):
        section.update(measure_service(
            quick=runner.quick,
            sessions=args.sessions,
            concurrency=args.concurrency,
            window=args.window,
        ))
        section["schema"] = SERVICE_SCHEMA
    if args.transport in ("process", "both"):
        section["process"] = measure_service_process(
            quick=runner.quick,
            sessions=args.sessions,
            concurrency=args.concurrency,
            deadline_s=args.deadline_s,
            retries=args.retries,
        )
    # A single-transport run must not drop the other lane from the
    # merged artifact (merge_section replaces "service" wholesale, and
    # the regression gate treats a missing baseline metric as failure).
    if runner.out.exists():
        try:
            previous = json.loads(runner.out.read_text()).get("service", {})
        except (OSError, ValueError):
            previous = {}
        for key in _TRANSPORT_KEYS:
            if key not in section and key in previous:
                section[key] = previous[key]
    out_path = runner.merge_section(section, key="service")
    print(render(section))
    print(f"wrote {out_path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_common_arguments(parser, DEFAULT_OUT)
    add_arguments(parser)
    return run(parser.parse_args(argv))
