"""Kogge-Stone adder and restoring division."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.builder import CircuitBuilder
from repro.circuits.netlist import GateOp
from repro.circuits.stdlib.integer import (
    add,
    decode_int,
    divmod_unsigned,
    encode_int,
    kogge_stone_add,
)

_VALS = st.integers(0, 255)


def _binary(build_fn, a, b, width=8):
    builder = CircuitBuilder()
    xs = builder.add_garbler_inputs(width)
    ys = builder.add_evaluator_inputs(width)
    builder.mark_outputs(build_fn(builder, xs, ys))
    circuit = builder.build()
    return circuit, circuit.eval_plain(encode_int(a, width), encode_int(b, width))


class TestKoggeStone:
    @settings(max_examples=50, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_matches_ripple(self, a, b):
        _, ks = _binary(kogge_stone_add, a, b)
        _, ripple = _binary(add, a, b)
        assert ks == ripple
        assert decode_int(ks) == (a + b) % 256

    def test_log_depth(self):
        builder = CircuitBuilder()
        xs = builder.add_garbler_inputs(32)
        ys = builder.add_evaluator_inputs(32)
        builder.mark_outputs(kogge_stone_add(builder, xs, ys))
        circuit = builder.build()
        assert circuit.depth() <= 2 * 6 + 2  # ~2*log2(32) levels

    def test_costs_more_tables_than_ripple(self):
        ks_circuit, _ = _binary(kogge_stone_add, 1, 1)
        ripple_circuit, _ = _binary(add, 1, 1)
        ks_ands = sum(1 for g in ks_circuit.gates if g.op is GateOp.AND)
        rp_ands = sum(1 for g in ripple_circuit.gates if g.op is GateOp.AND)
        assert ks_ands > rp_ands

    def test_width_mismatch(self):
        builder = CircuitBuilder()
        xs = builder.add_garbler_inputs(4)
        with pytest.raises(ValueError):
            kogge_stone_add(builder, xs[:2], xs[:3])

    def test_empty_operands(self):
        builder = CircuitBuilder()
        builder.add_garbler_inputs(1)
        assert kogge_stone_add(builder, [], []) == []


class TestDivision:
    @settings(max_examples=50, deadline=None)
    @given(a=_VALS, b=st.integers(1, 255))
    def test_quotient_remainder(self, a, b):
        def build(builder, xs, ys):
            q, r = divmod_unsigned(builder, xs, ys)
            return q + r

        _, out = _binary(build, a, b)
        assert decode_int(out[:8]) == a // b
        assert decode_int(out[8:]) == a % b

    def test_divide_by_zero_convention(self):
        def build(builder, xs, ys):
            q, r = divmod_unsigned(builder, xs, ys)
            return q + r

        _, out = _binary(build, 77, 0)
        assert decode_int(out[:8]) == 255  # all-ones quotient
        assert decode_int(out[8:]) == 77  # remainder = dividend

    @settings(max_examples=20, deadline=None)
    @given(a=_VALS)
    def test_divide_by_one(self, a):
        def build(builder, xs, ys):
            q, r = divmod_unsigned(builder, xs, ys)
            return q + r

        _, out = _binary(build, a, 1)
        assert decode_int(out[:8]) == a
        assert decode_int(out[8:]) == 0

    def test_width_mismatch(self):
        builder = CircuitBuilder()
        xs = builder.add_garbler_inputs(4)
        with pytest.raises(ValueError):
            divmod_unsigned(builder, xs[:2], xs[:3])

    def test_division_is_deep(self):
        def build(builder, xs, ys):
            q, r = divmod_unsigned(builder, xs, ys)
            return q + r

        circuit, _ = _binary(build, 1, 1)
        assert circuit.depth() > 100  # n^2-ish dependence chain
