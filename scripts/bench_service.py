#!/usr/bin/env python
"""Deprecated shim -- use ``python -m repro bench service``.

Forwards unchanged to :mod:`repro.bench.service` (same flags, same
``"service"`` section merged into ``BENCH_throughput.json``) and warns
once.
"""

from __future__ import annotations

import pathlib
import sys
import warnings

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench import service as _suite  # noqa: E402
from repro.bench.service import (  # noqa: E402,F401  (re-exported)
    SERVICE_SCHEMA,
    measure_service,
)


def main(argv=None) -> int:
    warnings.warn(
        "scripts/bench_service.py is deprecated; use "
        "`python -m repro bench service`",
        DeprecationWarning,
        stacklevel=2,
    )
    return _suite.main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
