"""Wire labels and the FreeXOR global offset.

A *wire* is a gate input/output; its encrypted value is a 128-bit *label*
(paper Figure 1).  Labels are represented as plain Python integers in
``[0, 2^128)`` so that the XOR-heavy Half-Gate algebra stays cheap.

The Garbler holds, for each wire ``i``, the pair ``(W_i^0, W_i^1)`` with
``W_i^1 = W_i^0 xor R`` (FreeXOR convention, Kolesnikov-Schneider).  The
Evaluator only ever holds one of the two.  The least-significant bit of a
label is its point-and-permute bit; because ``lsb(R) = 1`` the two labels
of a wire always expose opposite permute bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .rng import MASK_128, LabelPrg

__all__ = ["LabelPair", "lsb", "xor_labels", "GlobalOffset", "label_to_bytes", "bytes_to_label"]


def lsb(label: int) -> int:
    """Point-and-permute bit of a label."""
    return label & 1


def xor_labels(a: int, b: int) -> int:
    """XOR of two 128-bit labels."""
    return a ^ b


def label_to_bytes(label: int) -> bytes:
    """Serialize a label to its 16-byte wire format (big-endian)."""
    return label.to_bytes(16, "big")


def bytes_to_label(data: bytes) -> int:
    """Deserialize a 16-byte wire-format label."""
    if len(data) != 16:
        raise ValueError(f"labels are 16 bytes, got {len(data)}")
    return int.from_bytes(data, "big")


@dataclass(frozen=True)
class LabelPair:
    """The Garbler's view of one wire: labels for logical 0 and 1."""

    zero: int

    def one(self, r: int) -> int:
        """Label for logical 1 under FreeXOR offset ``r``."""
        return self.zero ^ r

    def select(self, bit: int, r: int) -> int:
        """Label encoding ``bit``."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        return self.zero ^ (r if bit else 0)

    def permute_bit(self) -> int:
        """The permute (colour) bit exposed by the zero label."""
        return lsb(self.zero)


class GlobalOffset:
    """Draws and holds the Garbler's secret FreeXOR offset R.

    ``lsb(R) = 1`` is enforced so point-and-permute colour bits are
    complementary across each wire's label pair.
    """

    def __init__(self, prg: LabelPrg) -> None:
        self.value = prg.next_odd_block()
        if not (0 < self.value <= MASK_128):
            raise AssertionError("R must be a non-zero 128-bit value")
        if self.value & 1 != 1:
            raise AssertionError("lsb(R) must be 1")

    def fresh_pair(self, prg: LabelPrg) -> LabelPair:
        """Draw a fresh random label pair for an input wire."""
        return LabelPair(prg.next_block())
