"""Cycle-level timing simulation of the HAAC accelerator.

The model follows the paper's decoupled-streaming architecture
(sections 3.1.4, 6.2): gate execution and off-chip movement overlap
completely, so runtime is ``max(compute, traffic)`` -- exactly the two
bars of the paper's Figure 7.

**Compute component** -- replays the compiler's per-GE instruction
streams in order.  Instruction ``p`` on GE ``g`` issues at::

    issue(p) = max(last_issue(g) + 1,                  # 1 instr/cycle, in-order
                   max over operands of value_ready)   # forwarding network

where ``value_ready = issue(producer) + exec_latency`` (+1 cycle when the
producer ran on a different GE), ``exec_latency`` is 1 for FreeXOR and
the Half-Gate pipeline depth for AND (18 Evaluator / 21 Garbler).  An
optional mode models SWW bank conflicts (each single-ported bank at the
2 GHz SWW clock serves two accesses per 1 GHz GE cycle).

**Traffic component** -- exact byte counts over the streaming DRAM pipe:
preloaded inputs, instruction streams, garbled tables (read by the
Evaluator, written by the Garbler -- same bytes), OoR wire reads plus
their 4-byte address stream, and live-wire write-backs.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.passes.streams import StreamSet
from ..core.sww import WIRE_BYTES
from .config import OOR_ADDR_BYTES, TABLE_BYTES, HaacConfig
from .dram import BandwidthLedger
from .engine import compute_cycles, compute_cycles_batch
from .stats import SimResult, StallBreakdown

__all__ = ["simulate", "simulate_batch", "compute_traffic", "compute_traffic_batch"]


def compute_traffic(streams: StreamSet, config: HaacConfig) -> BandwidthLedger:
    """Exact off-chip byte counts for one program execution."""
    return compute_traffic_batch(streams, (config,))[0]


def compute_traffic_batch(
    streams: StreamSet, configs: Sequence[HaacConfig]
) -> List[BandwidthLedger]:
    """Byte ledgers for one program under many configs at once.

    Only the instruction-stream charge depends on the config (its
    encoding width); the other four charges are pure functions of the
    compiled program, so they are summed once and reused across the
    whole config axis instead of re-walking the stream set per grid
    point.  Each returned ledger is bit-identical to the serial
    ``compute_traffic`` walk for its config (asserted by the batched
    test suite) -- same charge names, same order, same totals.
    """
    program = streams.program
    input_rd = program.n_inputs * WIRE_BYTES
    n_instructions = len(program.instructions)
    table_rd = program.n_and * TABLE_BYTES
    oorw_rd = streams.oor_reads * (WIRE_BYTES + OOR_ADDR_BYTES)
    live_wr = program.n_live * WIRE_BYTES
    ledgers: List[BandwidthLedger] = []
    for config in configs:
        ledger = BandwidthLedger()
        ledger.charge("input_rd", input_rd)
        ledger.charge("instr_rd", n_instructions * config.instr_bytes)
        ledger.charge("table_rd", table_rd)
        ledger.charge("oorw_rd", oorw_rd)
        ledger.charge("live_wr", live_wr)
        ledgers.append(ledger)
    return ledgers


def simulate(streams: StreamSet, config: HaacConfig) -> SimResult:
    """Run the decoupled timing model for one compiled program.

    The compute replay lives in :mod:`repro.sim.engine` (shared with the
    coupled and multicore models); ``REPRO_SIM_ENGINE`` (or
    ``config.sim_engine``) selects between the level-parallel ``numpy``
    engine (default), the flat-array ``vectorized`` loop and the
    retained per-gate ``reference`` path -- all bit-identical.
    """
    stalls = StallBreakdown()
    compute_cycles_total, issued_per_ge = compute_cycles(streams, config, stalls)
    return _pack_result(streams, config, compute_cycles_total, issued_per_ge, stalls)


def simulate_batch(
    streams: StreamSet, configs: Sequence[HaacConfig]
) -> List[SimResult]:
    """Decoupled timing model for one program under many configs at once.

    The compute replay runs batched
    (:func:`repro.sim.engine.compute_cycles_batch`): configs on the
    numpy engine without bank-conflict modelling share one level pass
    with a leading config axis (and configs whose compute scalars
    coincide -- a DRAM-bandwidth sweep -- share one replay row);
    everything else falls back to a per-config replay.  Each returned
    :class:`SimResult` is bit-identical to ``simulate(streams, config)``
    for its config; only the wall time differs.
    """
    configs = list(configs)
    stalls_list = [StallBreakdown() for _ in configs]
    compute = compute_cycles_batch(streams, configs, stalls_list)
    ledgers = compute_traffic_batch(streams, configs)
    return [
        _pack_result(streams, config, cycles, issued, stalls, ledger)
        for config, (cycles, issued), stalls, ledger in zip(
            configs, compute, stalls_list, ledgers
        )
    ]


def _pack_result(
    streams: StreamSet,
    config: HaacConfig,
    compute_cycles_total: int,
    issued_per_ge,
    stalls: StallBreakdown,
    ledger: "BandwidthLedger | None" = None,
) -> SimResult:
    if ledger is None:
        ledger = compute_traffic(streams, config)
    traffic_cycles = ledger.total_bytes / config.dram_bytes_per_ge_cycle
    program = streams.program
    return SimResult(
        name=program.name,
        compute_cycles=compute_cycles_total,
        traffic_cycles=traffic_cycles,
        ledger=ledger,
        stalls=stalls,
        n_instructions=len(program.instructions),
        n_and=program.n_and,
        ge_clock_hz=config.ge_clock_hz,
        issued_per_ge=issued_per_ge,
    )
