"""Process-parallel label-hash backend: sharded AND-level batches.

The paper's throughput claim is that garbling scales with the number of
gate engines working independent AND gates within a level.  This backend
is the software analogue: every batch call (one multiplicative-depth
level of AND gates, see :func:`repro.gc.garble.garble_circuit_batched`)
is split into contiguous shards and dispatched to a **persistent pool of
worker processes**, each running the fastest single-process backend
available to it (NumPy when importable, the scalar reference otherwise).

Design invariants (see DESIGN.md section 7):

* **Deterministic reassembly.**  A batch of ``n`` labels is split into
  ``workers`` contiguous shards whose boundaries depend only on
  ``(n, workers)``.  Worker ``i`` writes its results into the disjoint
  slice ``[start_i, stop_i)`` of the shared output array, so the
  reassembled batch is *bitwise identical* to a serial evaluation
  regardless of worker scheduling.  The gate hash is a pure function,
  hence whole-circuit transcripts (tables, labels, decode bits) match
  the serial batched path exactly.
* **Shared-memory transport.**  Label, key-schedule and ciphertext
  arrays travel through :mod:`multiprocessing.shared_memory` blocks --
  one reusable, grow-on-demand pair per pool -- so per-level dispatch
  costs two memcpys, not a pickle of the arrays.  Task tuples contain
  only primitives (block names, shard bounds), so they pickle cheaply on
  both fork- and spawn-based platforms.
* **Per-worker key expansion.**  In re-keyed mode the per-gate AES key
  schedules are expanded *inside* the worker that hashes the shard
  (``hash_labels``), or sharded across the pool when the caller
  pre-expands whole-program schedules (``expand_keys``), mirroring HAAC
  streaming round keys to each gate engine rather than broadcasting
  them.
* **Worker-resident schedules.**  ``expand_keys_program`` shards the
  whole-program expansion *into a dedicated resident block* that stays
  mapped in every worker (the attachment LRU keeps it hot); per-level
  ``hash_schedule_rows`` calls then ship 8-byte row indices instead of
  re-copying 176-byte schedule rows through the transport blocks every
  AND level.  Each expansion gets its own block under a generation
  stamp, and a pool keeps the most recent ``_SCHED_BLOCK_CAP``
  generations live so concurrent sessions sharing the pool all stay
  hot; a handle whose generation was evicted (or whose pool died)
  silently degrades to the parent-side copy of the expansion.
* **Per-shard retry, then serial fallback.**  A failed shard is
  re-dispatched once (task errors retry just the failed shards; a
  broken/timed-out pool is rebuilt with fresh transport blocks and the
  whole batch re-dispatched) before the backend permanently falls back
  to its in-process inner backend.  The fallback is observable: a
  ``RuntimeWarning`` fires once, the reason lands in
  :attr:`pool_disabled_reason` and -- via :mod:`repro.faults` -- in
  ``SessionResult.recovery_events``.  Small batches (below
  :attr:`min_batch` labels) never pay the dispatch overhead.

Select with ``backend="parallel"`` (worker count from the
``REPRO_GC_WORKERS`` environment variable, default ``os.cpu_count()``)
or pin the count in the spec: ``backend="parallel:4"``,
``REPRO_GC_BACKEND=parallel:4``, ``HaacConfig.gc_workers`` or the CLI
``--workers`` flag.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import signal
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from ...faults import active_plan as _active_plan
from ...faults import record_recovery as _record_recovery
from .base import _WARN_ONCE, BackendUnavailable, LabelHashBackend, get_backend

__all__ = [
    "ParallelLabelHashBackend",
    "ResidentSchedules",
    "WORKERS_ENV_VAR",
    "shard_bounds",
    "shutdown_pools",
]

WORKERS_ENV_VAR = "REPRO_GC_WORKERS"

#: Batches smaller than this many labels run in-process: the dispatch
#: memcpy + wakeup costs more than the hashing it would spread out.
DEFAULT_MIN_BATCH = 512

_LABEL_BYTES = 16
_SCHED_BYTES = 176  # 44 uint32 round-key words


def shard_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous, near-even shard boundaries -- a pure function of
    ``(n, workers)`` so reassembly order never depends on scheduling."""
    shards = min(workers, n)
    bounds = []
    base, extra = divmod(n, shards)
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def default_workers() -> int:
    """Worker count when the spec does not pin one: environment, else
    every core."""
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise BackendUnavailable(
                f"{WORKERS_ENV_VAR}={env!r} is not an integer"
            ) from None
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------

_WORKER_BACKEND: Optional[LabelHashBackend] = None
_WORKER_SHM: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _worker_init(inner_name: str, start_method: str) -> None:
    """Pool initializer: resolve the in-worker compute backend once.

    Importing this module (which spawn does to unpickle the function)
    pulls in the :mod:`repro.gc.backends` package, so the registry is
    populated in fresh interpreters too.  ``start_method`` is recorded
    in the task environment purely for debuggability.
    """
    global _WORKER_BACKEND
    _WORKER_BACKEND = get_backend(inner_name)
    os.environ["REPRO_GC_PARALLEL_START"] = start_method


#: Attachment-cache bound: a task references at most two block names,
#: so anything beyond a few generations of grow-on-demand replacement
#: is a dead mapping worth releasing.
_WORKER_SHM_CAP = 8


def _worker_attach(name: str) -> shared_memory.SharedMemory:
    """Attach to (and cache, LRU-bounded) a parent-owned block.

    Attaching re-registers the segment with the resource tracker, but
    pool workers (fork *and* spawn) inherit the parent's tracker, whose
    name cache is a set -- the duplicate collapses, and the parent's
    explicit ``unlink`` on close/atexit retires the registration.  Do
    NOT unregister here: the tracker is shared, so that would drop the
    parent's own registration out from under it.
    """
    shm = _WORKER_SHM.pop(name, None)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
    _WORKER_SHM[name] = shm  # re-insert = move to MRU position
    while len(_WORKER_SHM) > _WORKER_SHM_CAP:
        _, stale = _WORKER_SHM.popitem(last=False)
        stale.close()
    return shm


def _run_shard(task: Tuple) -> int:
    """Execute one shard: read slice, hash, write slice.  Returns the
    number of items processed (a cheap liveness signal).

    ``extra`` carries kind-specific primitives; for ``sched_rows`` it
    names the resident whole-program schedule block (attached once per
    worker and kept mapped by the LRU cache, so per-level tasks ship
    only row indices)."""
    kind, in_name, out_name, start, stop, n, rekeyed, extra = task
    backend = _WORKER_BACKEND
    if backend is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("parallel worker used before initialization")
    in_buf = _worker_attach(in_name).buf
    out_buf = _worker_attach(out_name).buf

    if kind == "ints":
        labels = [
            int.from_bytes(in_buf[_LABEL_BYTES * i : _LABEL_BYTES * (i + 1)], "big")
            for i in range(start, stop)
        ]
        tweak_base = _LABEL_BYTES * n
        tweaks = [
            int.from_bytes(
                in_buf[tweak_base + _LABEL_BYTES * i : tweak_base + _LABEL_BYTES * (i + 1)],
                "big",
            )
            for i in range(start, stop)
        ]
        hashes = backend.hash_labels(labels, tweaks, rekeyed)
        for i, value in zip(range(start, stop), hashes):
            out_buf[_LABEL_BYTES * i : _LABEL_BYTES * (i + 1)] = value.to_bytes(
                _LABEL_BYTES, "big"
            )
        return stop - start

    import numpy as np

    if kind == "expand":
        keys = np.ndarray((n, 4), dtype=np.uint32, buffer=in_buf)
        out = np.ndarray((n, 44), dtype=np.uint32, buffer=out_buf)
        out[start:stop] = backend.expand_keys(keys[start:stop])
    elif kind == "sched":
        labels = np.ndarray((n, 4), dtype=np.uint32, buffer=in_buf)
        scheds = np.ndarray(
            (n, 44), dtype=np.uint32, buffer=in_buf, offset=_LABEL_BYTES * n
        )
        out = np.ndarray((n, 4), dtype=np.uint32, buffer=out_buf)
        out[start:stop] = backend.hash_with_schedules(
            labels[start:stop], scheds[start:stop]
        )
    elif kind == "sched_rows":
        sched_name, sched_n = extra
        labels = np.ndarray((n, 4), dtype=np.uint32, buffer=in_buf)
        rows = np.ndarray(
            (n,), dtype=np.int64, buffer=in_buf, offset=_LABEL_BYTES * n
        )
        resident = np.ndarray(
            (sched_n, 44),
            dtype=np.uint32,
            buffer=_worker_attach(sched_name).buf,
        )
        out = np.ndarray((n, 4), dtype=np.uint32, buffer=out_buf)
        out[start:stop] = backend.hash_with_schedules(
            labels[start:stop], resident[rows[start:stop]]
        )
    elif kind == "fixed":
        labels = np.ndarray((n, 4), dtype=np.uint32, buffer=in_buf)
        tweaks = np.ndarray(
            (n, 4), dtype=np.uint32, buffer=in_buf, offset=_LABEL_BYTES * n
        )
        out = np.ndarray((n, 4), dtype=np.uint32, buffer=out_buf)
        out[start:stop] = backend.hash_fixed_key_blocks(
            labels[start:stop], tweaks[start:stop]
        )
    else:  # pragma: no cover - parent only emits known kinds
        raise ValueError(f"unknown shard kind {kind!r}")
    return stop - start


# ---------------------------------------------------------------------------
# Parent-process side: pool + shared-memory lifetime
# ---------------------------------------------------------------------------


class _PoolHandle:
    """One persistent worker pool plus its reusable transport blocks.

    A :class:`~concurrent.futures.ProcessPoolExecutor` rather than
    ``multiprocessing.Pool``: the executor detects dead workers and
    raises ``BrokenProcessPool`` instead of blocking forever, which the
    backend turns into its silent serial fallback.
    """

    def __init__(self, workers: int, inner_name: str, start_method: str) -> None:
        ctx = multiprocessing.get_context(start_method)
        self.pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(inner_name, start_method),
        )
        self.workers = workers
        self._in: Optional[shared_memory.SharedMemory] = None
        self._out: Optional[shared_memory.SharedMemory] = None
        # Resident whole-program key-schedule blocks, one per live
        # expand_keys_program generation, keyed by generation stamp.
        # Concurrent sessions sharing this pool each keep their own
        # program's expansion resident (up to _SCHED_BLOCK_CAP, evicted
        # LRU); an evicted or retired generation silently degrades to
        # the parent-side copy.  Kept separate from the per-level
        # transport blocks so level dispatches never clobber them.
        self._sched_blocks: "OrderedDict[int, shared_memory.SharedMemory]" = (
            OrderedDict()
        )
        # Freshly written expansion not yet published under a
        # generation: staged by schedule_block, published by
        # adopt_schedule once the dispatch that fills it succeeded.
        self._pending_sched: Optional[shared_memory.SharedMemory] = None

    @staticmethod
    def _ensure(
        block: Optional[shared_memory.SharedMemory], nbytes: int
    ) -> shared_memory.SharedMemory:
        if block is not None and block.size >= nbytes:
            return block
        if block is not None:
            _retire_block(block)
        size = 1 << max(12, (max(1, nbytes) - 1).bit_length())
        return shared_memory.SharedMemory(create=True, size=size)

    def buffers(
        self, in_nbytes: int, out_nbytes: int
    ) -> Tuple[shared_memory.SharedMemory, shared_memory.SharedMemory]:
        """Grow-on-demand input/output blocks (names go into each task)."""
        self._in = self._ensure(self._in, in_nbytes)
        self._out = self._ensure(self._out, out_nbytes)
        return self._in, self._out

    def schedule_block(self, nbytes: int) -> shared_memory.SharedMemory:
        """Stage a fresh resident-schedule block for one expansion.

        Always a new block: live generations owned by other sessions
        keep their own blocks untouched.  A stale pending block (a
        previous expansion whose dispatch failed before adoption) is
        retired first.
        """
        if self._pending_sched is not None:
            _retire_block(self._pending_sched)
        size = 1 << max(12, (max(1, nbytes) - 1).bit_length())
        self._pending_sched = shared_memory.SharedMemory(create=True, size=size)
        return self._pending_sched

    def adopt_schedule(self, generation: int) -> None:
        """Publish the pending block under ``generation`` (LRU-capped)."""
        if self._pending_sched is None:  # pragma: no cover - caller bug
            raise RuntimeError("no pending schedule block to adopt")
        self._sched_blocks[generation] = self._pending_sched
        self._pending_sched = None
        while len(self._sched_blocks) > _SCHED_BLOCK_CAP:
            _, stale = self._sched_blocks.popitem(last=False)
            _retire_block(stale)

    def resident_schedule(
        self, generation: int
    ) -> Optional[shared_memory.SharedMemory]:
        """The live block for ``generation``, LRU-touched, or None."""
        block = self._sched_blocks.pop(generation, None)
        if block is not None:
            self._sched_blocks[generation] = block  # move to MRU
        return block

    def close(self) -> None:
        self.pool.shutdown(wait=False, cancel_futures=True)
        blocks = [self._in, self._out, self._pending_sched]
        blocks.extend(self._sched_blocks.values())
        for block in blocks:
            if block is not None:
                _retire_block(block)
        self._in = self._out = self._pending_sched = None
        self._sched_blocks.clear()


#: Live resident-schedule generations kept per pool: enough for a
#: handful of concurrent sessions to stay hot; beyond it the
#: least-recently-used program degrades to its parent-side copy.
_SCHED_BLOCK_CAP = 4


def _retire_block(block: shared_memory.SharedMemory) -> None:
    try:
        block.close()
        block.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


_POOLS: Dict[Tuple[int, str, str], _PoolHandle] = {}
_ATEXIT_REGISTERED = False

#: Monotone schedule-residency generations, shared across pools so a
#: handle minted against a retired pool can never match a fresh one.
_SCHED_GENERATIONS = itertools.count(1)


class ResidentSchedules:
    """Handle for a whole-program key-schedule expansion.

    ``array`` is the parent-side expansion (every serial fallback uses
    it); ``shm_name``/``n`` locate the worker-resident copy and
    ``generation`` pins the pool state it was written under --
    ``hash_schedule_rows`` verifies the generation before trusting the
    resident block and silently degrades to ``array`` otherwise.
    """

    __slots__ = ("array", "shm_name", "generation", "n")

    def __init__(self, array, shm_name: str, generation: int, n: int) -> None:
        self.array = array
        self.shm_name = shm_name
        self.generation = generation
        self.n = n

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, item):
        return self.array[item]


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _get_pool(workers: int, inner_name: str, start_method: str) -> _PoolHandle:
    """Create (or reuse) the persistent pool for this configuration."""
    global _ATEXIT_REGISTERED
    key = (workers, inner_name, start_method)
    handle = _POOLS.get(key)
    if handle is None:
        handle = _PoolHandle(workers, inner_name, start_method)
        _POOLS[key] = handle
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_pools)
            _ATEXIT_REGISTERED = True
    return handle


def _drop_pool(workers: int, inner_name: str, start_method: str) -> None:
    """Retire one pool (and unlink its blocks) after a dispatch failure.

    Unlinking matters for correctness, not just hygiene: a shard that
    timed out may still be running, and tearing the blocks down here
    guarantees it can never scribble into a block a *fresh* pool (new
    names) later uses for another batch.
    """
    handle = _POOLS.pop((workers, inner_name, start_method), None)
    if handle is not None:
        try:
            handle.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def shutdown_pools() -> None:
    """Terminate every persistent pool and release its shared memory."""
    while _POOLS:
        _, handle = _POOLS.popitem()
        try:
            handle.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class ParallelLabelHashBackend(LabelHashBackend):
    """Shard batch hash calls across a persistent process pool.

    ``workers`` defaults to ``REPRO_GC_WORKERS`` / ``os.cpu_count()``;
    ``inner`` is the per-worker compute backend (auto: NumPy when
    available, scalar otherwise).  ``min_batch`` is the smallest batch
    (in labels) worth dispatching.  ``start_method`` picks the
    :mod:`multiprocessing` start method (default ``fork`` where
    available).
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        inner: Optional[str] = None,
        min_batch: Optional[int] = None,
        start_method: Optional[str] = None,
        timeout: float = 600.0,
    ) -> None:
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise BackendUnavailable("parallel backend needs at least 1 worker")
        if inner is None:
            try:
                self._inner = get_backend("numpy")
            except BackendUnavailable:
                self._inner = get_backend("scalar")
        else:
            if inner.split(":", 1)[0] == "parallel":
                raise BackendUnavailable(
                    "parallel backend cannot nest itself as inner"
                )
            self._inner = get_backend(inner)
        self.inner_name = self._inner.name
        self.vectorized = self._inner.vectorized
        self.min_batch = DEFAULT_MIN_BATCH if min_batch is None else min_batch
        self.start_method = start_method or _default_start_method()
        self.timeout = timeout  # per-shard ceiling; a hung pool falls back
        self.pool_disabled_reason: Optional[str] = None
        self.pool_batches = 0  # successful sharded dispatches (test hook)

    @classmethod
    def from_spec(cls, arg: Optional[str] = None) -> "ParallelLabelHashBackend":
        """Build from the spec suffix: ``parallel`` or ``parallel:N``."""
        if arg is None or arg == "":
            return cls()
        try:
            workers = int(arg)
        except ValueError:
            raise BackendUnavailable(
                f"bad parallel backend spec {('parallel:' + arg)!r}; "
                "expected parallel:<workers>"
            ) from None
        if workers < 1:
            raise BackendUnavailable(
                f"parallel backend needs >= 1 worker, got {workers}"
            )
        return cls(workers=workers)

    @property
    def inner(self) -> LabelHashBackend:
        """The in-process backend used for serial fallbacks and shards."""
        return self._inner

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------

    def _use_pool(self, n_items: int) -> bool:
        return (
            self.workers > 1
            and n_items >= self.min_batch
            and self.pool_disabled_reason is None
        )

    def _dispatch(
        self,
        kind: str,
        n: int,
        rekeyed: bool,
        in_nbytes: int,
        out_nbytes: int,
        fill,
        extra=None,
        resident_out=False,
    ):
        """Run one sharded batch; returns the output block or raises.

        ``fill(in_buf)`` writes the input arrays into the shared block.
        The caller copies results out of the returned block *before* the
        next dispatch reuses it.  ``extra`` rides along in every task
        tuple (primitives only -- see ``_run_shard``).  With
        ``resident_out`` the workers write into the pool's persistent
        schedule block (which later ``sched_rows`` tasks read in place)
        instead of the reusable transport block.

        A failed shard is re-dispatched once before this raises (and the
        caller's serial fallback kicks in): task-level errors retry just
        the failed shards on the live pool; a broken or timed-out pool
        is rebuilt (fresh workers *and* fresh transport blocks, so a
        zombie shard can never scribble into the retry's buffers) and
        the whole batch re-dispatched.  Either recovery is recorded in
        the active :class:`repro.faults.RecoveryLog`.
        """

        def stage(handle: _PoolHandle):
            if resident_out:
                in_shm, _ = handle.buffers(in_nbytes, 1)
                out_shm = handle.schedule_block(out_nbytes)
            else:
                in_shm, out_shm = handle.buffers(in_nbytes, out_nbytes)
            fill(in_shm.buf)
            tasks = [
                (kind, in_shm.name, out_shm.name, start, stop, n, rekeyed, extra)
                for start, stop in shard_bounds(n, self.workers)
            ]
            return out_shm, tasks

        handle = _get_pool(self.workers, self.inner_name, self.start_method)
        out_shm, tasks = stage(handle)
        futures = [handle.pool.submit(_run_shard, task) for task in tasks]
        self._maybe_kill_worker(handle)
        failed: List[Tuple[int, BaseException]] = []
        broken = False
        for index, future in enumerate(futures):
            try:
                future.result(timeout=self.timeout)
            except Exception as exc:
                failed.append((index, exc))
                if isinstance(exc, (BrokenProcessPool, TimeoutError, _FuturesTimeout)):
                    broken = True
        if failed:
            first = failed[0][1]
            if broken:
                _record_recovery(
                    "pool",
                    "pool_rebuild",
                    f"{kind}: {type(first).__name__}; rebuilding pool and "
                    f"re-dispatching all {len(tasks)} shard(s)",
                )
                _drop_pool(self.workers, self.inner_name, self.start_method)
                handle = _get_pool(self.workers, self.inner_name, self.start_method)
                out_shm, tasks = stage(handle)
                retry = [handle.pool.submit(_run_shard, task) for task in tasks]
            else:
                _record_recovery(
                    "pool",
                    "shard_retry",
                    f"{kind}: re-dispatching {len(failed)} failed shard(s) "
                    f"({type(first).__name__})",
                )
                retry = [
                    handle.pool.submit(_run_shard, tasks[index])
                    for index, _ in failed
                ]
            for future in retry:
                future.result(timeout=self.timeout)
        self.pool_batches += 1
        return out_shm

    def _maybe_kill_worker(self, handle: _PoolHandle) -> None:
        """Chaos hook: SIGKILL one pool worker when the active fault
        plan draws ``kill_worker`` (the dispatch in flight then takes
        the pool-rebuild retry path above)."""
        plan = _active_plan()
        if plan is None or not plan.kill_worker():
            return
        processes = getattr(handle.pool, "_processes", None) or {}
        for pid in sorted(processes):
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:  # pragma: no cover - already gone
                continue
            return

    def _disable(self, exc: BaseException) -> None:
        """Record the failure and fall back to the inner backend for the
        rest of this backend's lifetime (machines where process pools
        cannot start must still run every path).

        The degradation is observable: a ``RuntimeWarning`` fires once
        per backend instance, the reason lands in the active
        :class:`repro.faults.RecoveryLog` (and from there in
        ``SessionResult.recovery_events``), and callers can inspect
        :attr:`pool_disabled_reason` directly.

        The shared pool handle is retired too: after a timeout a shard
        may still be running, and other backend instances with the same
        configuration must not inherit a pool whose transport blocks a
        zombie task could still write into.
        """
        if self.pool_disabled_reason is None:
            self.pool_disabled_reason = f"{type(exc).__name__}: {exc}"
            # Deduplicated per pool configuration, not per instance: a
            # fleet of sessions sharing one broken pool surfaces one
            # warning, and reset_warn_once() re-arms it.
            _WARN_ONCE.warn(
                ("pool_disabled", self.workers, self.inner_name, self.start_method),
                f"parallel gc pool disabled ({self.pool_disabled_reason}); "
                f"falling back to in-process {self.inner_name!r} backend",
                stacklevel=4,
            )
            _record_recovery("pool", "pool_disabled", self.pool_disabled_reason)
        _drop_pool(self.workers, self.inner_name, self.start_method)

    # ------------------------------------------------------------------
    # Generic batch API
    # ------------------------------------------------------------------

    def hash_labels(
        self,
        labels: Sequence[int],
        tweaks: Sequence[int],
        rekeyed: bool = True,
    ) -> List[int]:
        if len(labels) != len(tweaks):
            raise ValueError("labels and tweaks must align")
        n = len(labels)
        if not self._use_pool(n):
            return self._inner.hash_labels(labels, tweaks, rekeyed)

        def fill(buf) -> None:
            for i, label in enumerate(labels):
                buf[_LABEL_BYTES * i : _LABEL_BYTES * (i + 1)] = label.to_bytes(
                    _LABEL_BYTES, "big"
                )
            base = _LABEL_BYTES * n
            for i, tweak in enumerate(tweaks):
                buf[base + _LABEL_BYTES * i : base + _LABEL_BYTES * (i + 1)] = (
                    tweak.to_bytes(_LABEL_BYTES, "big")
                )

        try:
            out_shm = self._dispatch(
                "ints", n, rekeyed, 2 * _LABEL_BYTES * n, _LABEL_BYTES * n, fill
            )
        except Exception as exc:
            self._disable(exc)
            return self._inner.hash_labels(labels, tweaks, rekeyed)
        data = bytes(out_shm.buf[: _LABEL_BYTES * n])
        return [
            int.from_bytes(data[offset : offset + _LABEL_BYTES], "big")
            for offset in range(0, len(data), _LABEL_BYTES)
        ]

    # ------------------------------------------------------------------
    # Vectorized primitives (present when the inner backend is NumPy):
    # conversions delegate, the hot calls shard across the pool.
    # ------------------------------------------------------------------

    def ints_to_blocks(self, values: Sequence[int]):
        return self._inner.ints_to_blocks(values)

    def blocks_to_ints(self, blocks) -> List[int]:
        return self._inner.blocks_to_ints(blocks)

    def tweaks_to_keys(self, tweaks: Sequence[int]):
        return self._inner.tweaks_to_keys(tweaks)

    def sigma_blocks(self, blocks):
        return self._inner.sigma_blocks(blocks)

    def encrypt_blocks(self, blocks, schedules):
        return self._inner.encrypt_blocks(blocks, schedules)

    def _sharded_blocks(self, kind: str, rekeyed: bool, blocks, extra, extra_bytes):
        """Common path for the hash-shaped shard kinds (sched / fixed):
        ``(n, 4)`` label blocks plus a per-row extra array in, ``(n, 4)``
        hash blocks out.  (``expand`` has its own dispatch path -- it
        has no extra array and a 44-word output row.)"""
        import numpy as np

        n = blocks.shape[0]

        def fill(buf) -> None:
            np.ndarray((n, 4), dtype=np.uint32, buffer=buf)[:] = blocks
            np.ndarray(
                extra.shape, dtype=np.uint32, buffer=buf, offset=_LABEL_BYTES * n
            )[:] = extra

        out_shm = self._dispatch(
            kind,
            n,
            rekeyed,
            _LABEL_BYTES * n + extra_bytes,
            _LABEL_BYTES * n,
            fill,
        )
        view = np.ndarray((n, 4), dtype=np.uint32, buffer=out_shm.buf)
        return np.array(view, copy=True)

    def expand_keys(self, keys):
        """Shard whole-program key expansion: each worker pre-expands the
        schedules of its own shard of AND gates."""
        import numpy as np

        n = keys.shape[0]
        if not self._use_pool(n):
            return self._inner.expand_keys(keys)

        def fill(buf) -> None:
            np.ndarray((n, 4), dtype=np.uint32, buffer=buf)[:] = keys

        try:
            out_shm = self._dispatch(
                "expand", n, True, _LABEL_BYTES * n, _SCHED_BYTES * n, fill
            )
        except Exception as exc:
            self._disable(exc)
            return self._inner.expand_keys(keys)
        view = np.ndarray((n, 44), dtype=np.uint32, buffer=out_shm.buf)
        return np.array(view, copy=True)

    def hash_with_schedules(self, blocks, schedules):
        n = blocks.shape[0]
        if not self._use_pool(n) or getattr(schedules, "ndim", 2) != 2:
            return self._inner.hash_with_schedules(blocks, schedules)
        try:
            return self._sharded_blocks(
                "sched", True, blocks, schedules, _SCHED_BYTES * n
            )
        except Exception as exc:
            self._disable(exc)
            return self._inner.hash_with_schedules(blocks, schedules)

    # ------------------------------------------------------------------
    # Worker-resident whole-program schedules
    # ------------------------------------------------------------------

    def expand_keys_program(self, keys):
        """Expand whole-program schedules *into the resident block*.

        Workers write their expansion shards straight into a dedicated
        shared-memory block that subsequent ``sched_rows`` tasks read in
        place -- the 176-byte schedule rows cross the process boundary
        once per program instead of once per AND level.
        """
        import numpy as np

        n = keys.shape[0]
        if not self._use_pool(n):
            return self._inner.expand_keys(keys)

        def fill(buf) -> None:
            np.ndarray((n, 4), dtype=np.uint32, buffer=buf)[:] = keys

        try:
            sched_shm = self._dispatch(
                "expand", n, True, _LABEL_BYTES * n, _SCHED_BYTES * n, fill,
                resident_out=True,
            )
        except Exception as exc:
            self._disable(exc)
            return self._inner.expand_keys(keys)
        handle = _get_pool(self.workers, self.inner_name, self.start_method)
        generation = next(_SCHED_GENERATIONS)
        handle.adopt_schedule(generation)
        view = np.ndarray((n, 44), dtype=np.uint32, buffer=sched_shm.buf)
        return ResidentSchedules(
            array=np.array(view, copy=True),
            shm_name=sched_shm.name,
            generation=generation,
            n=n,
        )

    def _resident_pool(self, sched) -> Optional[_PoolHandle]:
        """The live pool whose resident block backs ``sched``, if any."""
        if not isinstance(sched, ResidentSchedules):
            return None
        handle = _POOLS.get((self.workers, self.inner_name, self.start_method))
        if handle is None or handle.resident_schedule(sched.generation) is None:
            return None
        return handle

    def hash_schedule_rows(self, blocks, schedules, rows):
        """Hash against resident schedule rows: ship 8-byte row indices
        per level, not 176-byte schedule rows."""
        import numpy as np

        n = blocks.shape[0]
        array = (
            schedules.array
            if isinstance(schedules, ResidentSchedules)
            else schedules
        )
        if not self._use_pool(n) or self._resident_pool(schedules) is None:
            # No resident block to index into (plain array, retired
            # generation, small program): gather the rows parent-side
            # and keep the *pooled* sched dispatch for large batches.
            return self.hash_with_schedules(blocks, array[rows])
        row_idx = np.ascontiguousarray(rows, dtype=np.int64)

        def fill(buf) -> None:
            np.ndarray((n, 4), dtype=np.uint32, buffer=buf)[:] = blocks
            np.ndarray(
                (n,), dtype=np.int64, buffer=buf, offset=_LABEL_BYTES * n
            )[:] = row_idx

        try:
            out_shm = self._dispatch(
                "sched_rows",
                n,
                True,
                _LABEL_BYTES * n + 8 * n,
                _LABEL_BYTES * n,
                fill,
                extra=(schedules.shm_name, schedules.n),
            )
        except Exception as exc:
            self._disable(exc)
            return self._inner.hash_with_schedules(blocks, array[rows])
        view = np.ndarray((n, 4), dtype=np.uint32, buffer=out_shm.buf)
        return np.array(view, copy=True)

    def hash_fixed_key_blocks(self, blocks, tweak_blocks):
        n = blocks.shape[0]
        if not self._use_pool(n) or getattr(tweak_blocks, "ndim", 2) != 2:
            return self._inner.hash_fixed_key_blocks(blocks, tweak_blocks)
        try:
            return self._sharded_blocks(
                "fixed", False, blocks, tweak_blocks, _LABEL_BYTES * n
            )
        except Exception as exc:
            self._disable(exc)
            return self._inner.hash_fixed_key_blocks(blocks, tweak_blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ParallelLabelHashBackend workers={self.workers} "
            f"inner={self.inner_name!r} start={self.start_method!r}>"
        )
