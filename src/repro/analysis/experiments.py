"""One driver per paper table/figure (the per-experiment index of DESIGN.md).

Every function returns structured data plus a rendered text block, so
the pytest-benchmark harnesses in ``benchmarks/``, the figure pipeline
in :mod:`repro.analysis.figures` and EXPERIMENTS.md all regenerate the
same rows.

Every number flows through a :class:`~repro.analysis.dataprovider.DataProvider`
-- drivers never call :func:`compile_circuit`/:func:`simulate` directly
and never hardcode a measured value.  Pass ``provider=`` to share one
provider (and its :class:`~repro.store.ResultStore`) across a figure
set; omitted, each driver computes live through the store named by the
``REPRO_RESULT_STORE`` environment variable (or no store at all).

Scaling note: the workloads are scaled down (Table 2 sizes in the
hundreds of kilogates instead of megagates) and the SWW is scaled with
them -- :data:`SCALED_SWW_BYTES` (64 KB) preserves the paper's ratio of
SWW capacity to program wire count, so windows slide, wires go OoR and
spent-wire behaviour is exercised exactly as at paper scale.  Table 4/5
use the paper's literal hardware parameters (they are size-independent
or use the small Table 5 micro-workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..baselines.prior_work import (
    GPU_GATES_PER_US,
    HAAC_PAPER_GATES_PER_US,
    PRIOR_WORK,
)
from ..core.compiler import OptLevel
from ..hwmodel.area import area_model
from ..hwmodel.energy import energy_model
from ..hwmodel.power import power_model
from ..sim.config import HaacConfig, Role
from ..sim.dram import DDR4, HBM2
from ..workloads.registry import PAPER_ORDER
from .dataprovider import DataProvider
from .report import geomean, render_table

__all__ = [
    "SCALED_SWW_BYTES",
    "ExperimentResult",
    "table1_ppc_comparison",
    "table2_characteristics",
    "table3_wire_traffic",
    "table4_area_power",
    "table5_prior_work",
    "fig6_compiler_opts",
    "fig7_ordering_sww",
    "fig8_ge_scaling",
    "fig9_energy",
    "fig10_plaintext",
]

#: SWW size used with the scaled workloads (paper: 2 MB at ~25x larger
#: programs).  64 KB = 4096 wires keeps the same window:program pressure.
SCALED_SWW_BYTES = 64 * 1024

_QUICK_SET = ["DotProd", "Hamm", "ReLU"]


@dataclass
class ExperimentResult:
    """Structured rows + rendered text for one table/figure."""

    name: str
    headers: List[str]
    rows: List[List[Any]]
    notes: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        text = render_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += f"\n{self.notes}"
        return text


def _workload_names(quick: bool) -> List[str]:
    return _QUICK_SET if quick else list(PAPER_ORDER)


def _scaled_config(**overrides: Any) -> HaacConfig:
    params: Dict[str, Any] = dict(n_ges=16, sww_bytes=SCALED_SWW_BYTES, dram=DDR4)
    params.update(overrides)
    return HaacConfig(**params)


def _provider(provider: Optional[DataProvider]) -> DataProvider:
    return provider if provider is not None else DataProvider()


# ---------------------------------------------------------------------------
# Table 1 -- qualitative PPC comparison
# ---------------------------------------------------------------------------


def table1_ppc_comparison() -> ExperimentResult:
    """The paper's taxonomy of PPC techniques (static)."""
    headers = ["Tech", "Conf", "Cntrl", "Arb", "Sec", "Overhead", "Parties", "Alone"]
    rows = [
        ["HE", "Yes", "No", "No", "Noise", "Very High", "1", "Yes"],
        ["TFHE", "Yes", "No", "Yes", "Noise", "Ext. High", "1", "Yes"],
        ["SS", "Yes", "Yes", "No", "I.T.", "Moderate", "2(+)", "No"],
        ["GCs", "Yes", "Yes", "Yes", "AES", "Very High", "2", "Yes"],
    ]
    return ExperimentResult(name="Table 1: PPC comparison", headers=headers, rows=rows)


# ---------------------------------------------------------------------------
# Table 2 -- workload characteristics
# ---------------------------------------------------------------------------


def table2_characteristics(
    quick: bool = False, provider: Optional[DataProvider] = None
) -> ExperimentResult:
    """Levels / wires / gates / AND% / ILP / spent-wire% per workload.

    Spent-wire % assumes the scaled SWW with full reordering, matching
    the paper's "2MB SWW with full reordering" footnote.
    """
    provider = _provider(provider)
    config = _scaled_config()
    headers = [
        "Benchmark", "Levels", "Wires(k)", "Gates(k)", "AND%", "ILP",
        "SpentWire%", "Paper:Lv", "Paper:AND%", "Paper:Spent%",
    ]
    rows: List[List[Any]] = []
    for name in _workload_names(quick):
        stats = provider.circuit_stats(name)
        point = provider.compile_point(name, config, OptLevel.RO_RN_ESW)
        paper = provider.workload(name).paper_table2
        rows.append([
            name,
            stats.levels,
            stats.wires / 1e3,
            stats.gates / 1e3,
            100.0 * stats.and_fraction,
            stats.ilp,
            point.spent_pct,
            paper.levels,
            paper.and_pct,
            paper.spent_wire_pct,
        ])
    return ExperimentResult(
        name="Table 2: benchmark characteristics (scaled workloads)",
        headers=headers,
        rows=rows,
        notes="Paper:* columns are the paper's values at paper-scale inputs.",
    )


# ---------------------------------------------------------------------------
# Table 3 -- wire traffic, segment vs full reorder
# ---------------------------------------------------------------------------


def table3_wire_traffic(
    quick: bool = False, provider: Optional[DataProvider] = None
) -> ExperimentResult:
    """Live / OoRW / total wire counts for segment vs full reordering."""
    provider = _provider(provider)
    config = _scaled_config()
    headers = [
        "Benchmark", "Live Seg(k)", "Live Full(k)", "OoRW Seg(k)",
        "OoRW Full(k)", "Total Seg(k)", "Total Full(k)", "Winner",
    ]
    rows: List[List[Any]] = []
    for name in _workload_names(quick):
        seg = provider.compile_point(name, config, OptLevel.SEG_RN_ESW)
        full = provider.compile_point(name, config, OptLevel.RO_RN_ESW)
        rows.append([
            name,
            seg.live_wires / 1e3, full.live_wires / 1e3,
            seg.oor_wires / 1e3, full.oor_wires / 1e3,
            seg.total_wires / 1e3, full.total_wires / 1e3,
            "seg" if seg.total_wires < full.total_wires else "full",
        ])
    return ExperimentResult(
        name="Table 3: wire traffic, segment vs full reordering (ESW on)",
        headers=headers,
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 4 -- area and power
# ---------------------------------------------------------------------------


def table4_area_power(config: Optional[HaacConfig] = None) -> ExperimentResult:
    """Component area/power at the paper's 16 GE / 2 MB / 64-bank point.

    Purely analytic (``area_model`` / ``power_model`` are closed-form in
    the config), so no provider/store round-trip is involved.
    """
    config = config or HaacConfig.paper_default()
    area = area_model(config)
    power = power_model(config)
    headers = ["Component", "Area (mm2)", "Power (mW)"]
    area_dict = area.as_dict()
    power_dict = power.as_dict()
    order = [
        ("Half-Gate", "halfgate"),
        ("FreeXOR", "freexor"),
        ("FWD", "fwd"),
        ("Crossbar", "crossbar"),
        ("SWW (SRAM)", "sww_sram"),
        ("Queues (SRAM)", "queues_sram"),
        ("Total HAAC", "total_haac"),
        ("HBM2 PHY", "hbm2_phy"),
    ]
    rows = [[label, area_dict[key], power_dict[key]] for label, key in order]
    density = power.power_density_w_mm2(area.total_haac)
    return ExperimentResult(
        name="Table 4: HAAC chip area and average power",
        headers=headers,
        rows=rows,
        notes=f"power density = {density:.2f} W/mm^2 (paper: 0.35)",
        extras={"area": area, "power": power},
    )


# ---------------------------------------------------------------------------
# Table 5 -- prior work
# ---------------------------------------------------------------------------


def table5_prior_work(
    quick: bool = False, provider: Optional[DataProvider] = None
) -> ExperimentResult:
    """Prior accelerators vs our simulated HAAC on the same micro-workloads.

    Comparison configuration per the paper: full reordering, 1 MB SWW,
    16 GEs, Garbler role (prior work reports *garbling* time).  The
    paper leaves the memory unstated; its reported times are only
    feasible with HBM2-class bandwidth (e.g. a 5x5 8-bit matmul's
    garbled tables alone exceed DDR4's budget at 1.6 us), so HBM2 is
    used here.
    """
    provider = _provider(provider)
    config = HaacConfig(
        n_ges=16, sww_bytes=1024 * 1024, dram=HBM2, role=Role.GARBLER
    )
    wanted = {"Hamm-50", "Million-8", "Add-6"} if quick else None
    our_time_us: Dict[str, float] = {}
    our_gates: Dict[str, int] = {}
    for entry in PRIOR_WORK:
        name = entry.benchmark
        if wanted is not None and name not in wanted:
            continue
        if name not in our_time_us:
            sim = provider.micro_sim_point(name, config, OptLevel.RO_RN_ESW)
            our_time_us[name] = sim.runtime_s * 1e6
            our_gates[name] = sim.n_instructions
    headers = [
        "System", "Benchmark", "Prior (us)", "Our HAAC (us)",
        "Speedup", "Paper HAAC (us)", "Paper speedup",
    ]
    rows: List[List[Any]] = []
    for entry in PRIOR_WORK:
        if entry.benchmark not in our_time_us:
            continue
        ours = our_time_us[entry.benchmark]
        rows.append([
            entry.system, entry.benchmark, entry.garbling_time_us, ours,
            entry.garbling_time_us / ours if ours else float("inf"),
            entry.paper_haac_us, entry.paper_speedup,
        ])
    extras: Dict[str, Any] = {"our_time_us": our_time_us, "our_gates": our_gates}
    if "AES-128" in our_gates:
        throughput = our_gates["AES-128"] / our_time_us["AES-128"]
        extras["gates_per_us"] = throughput
        extras["gpu_gates_per_us"] = GPU_GATES_PER_US
        extras["paper_haac_gates_per_us"] = HAAC_PAPER_GATES_PER_US
    return ExperimentResult(
        name="Table 5: comparison to prior accelerators (garbling)",
        headers=headers,
        rows=rows,
        notes="Config: full reorder, 1 MB SWW, 16 GEs, Garbler.",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Figure 6 -- compiler optimization speedups over CPU
# ---------------------------------------------------------------------------


def fig6_compiler_opts(
    quick: bool = False, provider: Optional[DataProvider] = None
) -> ExperimentResult:
    """Speedup over CPU GC: Baseline vs RO+RN vs RO+RN+ESW (DDR4)."""
    provider = _provider(provider)
    config = _scaled_config()
    headers = ["Benchmark", "Baseline", "RO+RN", "RO+RN+ESW", "RO+RN/Base", "ESW/RO+RN"]
    rows: List[List[Any]] = []
    speedups: Dict[str, List[float]] = {"base": [], "rorn": [], "esw": []}
    garbler_evaluator_gap: List[float] = []
    for name in _workload_names(quick):
        cpu_time = provider.cpu_time(name)
        runtimes: Dict[OptLevel, float] = {}
        for opt in (OptLevel.BASELINE, OptLevel.RO_RN, OptLevel.RO_RN_ESW):
            runtimes[opt] = provider.sim_point(name, config, opt).runtime_s
            if opt is OptLevel.RO_RN_ESW:
                garbler_config = config.with_role(Role.GARBLER)
                garbler_time = provider.sim_point(
                    name, garbler_config, opt
                ).runtime_s
                garbler_evaluator_gap.append(garbler_time / runtimes[opt] - 1.0)
        base = cpu_time / runtimes[OptLevel.BASELINE]
        rorn = cpu_time / runtimes[OptLevel.RO_RN]
        esw = cpu_time / runtimes[OptLevel.RO_RN_ESW]
        speedups["base"].append(base)
        speedups["rorn"].append(rorn)
        speedups["esw"].append(esw)
        rows.append([name, base, rorn, esw, rorn / base, esw / rorn])
    notes = (
        f"geomean speedups: baseline {geomean(speedups['base']):.1f}x, "
        f"RO+RN {geomean(speedups['rorn']):.1f}x, "
        f"RO+RN+ESW {geomean(speedups['esw']):.1f}x | "
        f"HAAC garbler is {100*sum(garbler_evaluator_gap)/len(garbler_evaluator_gap):.2f}% "
        "slower than evaluator (paper: 0.67%)"
    )
    return ExperimentResult(
        name="Figure 6: speedup over CPU by compiler configuration (DDR4)",
        headers=headers,
        rows=rows,
        notes=notes,
        extras={"speedups": speedups},
    )


# ---------------------------------------------------------------------------
# Figure 7 -- compute vs wire traffic across orderings and SWW sizes
# ---------------------------------------------------------------------------


def fig7_ordering_sww(
    benchmarks: Sequence[str] = ("MatMult", "BubbSt"),
    sww_sizes: Sequence[int] = (SCALED_SWW_BYTES // 4, SCALED_SWW_BYTES // 2, SCALED_SWW_BYTES),
    provider: Optional[DataProvider] = None,
) -> ExperimentResult:
    """Compute time vs off-chip wire-traffic time per ordering x SWW size.

    The paper's 0.5/1/2 MB x-axis maps to quarter/half/full scaled SWW.
    Wire-traffic time counts only wire movement (OoR reads + live
    writes), isolating the same quantity as the paper's blue bars.
    """
    provider = _provider(provider)
    headers = [
        "Benchmark", "Order", "SWW(KB)", "Compute(us)", "WireTraffic(us)", "Bound",
    ]
    rows: List[List[Any]] = []
    opt_of = {
        "Baseline": OptLevel.BASELINE,
        "Seg": OptLevel.SEG_RN_ESW,
        "FullRO": OptLevel.RO_RN_ESW,
    }
    for name in benchmarks:
        for order, opt in opt_of.items():
            for sww_bytes in sww_sizes:
                config = _scaled_config(sww_bytes=sww_bytes)
                sim = provider.sim_point(name, config, opt)
                point = provider.compile_point(name, config, opt)
                wire_bytes = (
                    (point.live_wires + point.oor_wires) * 16
                    + point.oor_wires * 4
                )
                wire_traffic_s = wire_bytes / config.dram.bandwidth_bytes_per_s
                rows.append([
                    name, order, sww_bytes // 1024,
                    sim.compute_s * 1e6, wire_traffic_s * 1e6,
                    "compute" if sim.compute_s > wire_traffic_s else "memory",
                ])
    return ExperimentResult(
        name="Figure 7: compute vs wire-traffic time (orderings x SWW)",
        headers=headers,
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 8 -- GE scaling
# ---------------------------------------------------------------------------


def fig8_ge_scaling(
    quick: bool = False,
    ge_counts: Sequence[int] = (1, 2, 4, 8, 16),
    provider: Optional[DataProvider] = None,
) -> ExperimentResult:
    """Speedup over CPU scaling GEs 1 to 16, DDR4 vs HBM2.

    DDR4 uses the better of segment/full reordering per workload (as the
    paper does); HBM2 always uses full reordering.
    """
    provider = _provider(provider)
    headers = ["Benchmark", "DRAM"] + [f"{n}GE" for n in ge_counts]
    rows: List[List[Any]] = []
    scaling: Dict[str, Dict[str, List[float]]] = {}
    for name in _workload_names(quick):
        cpu_time = provider.cpu_time(name)
        scaling[name] = {}
        for dram in (DDR4, HBM2):
            speedups: List[float] = []
            for n_ges in ge_counts:
                config = _scaled_config(n_ges=n_ges, dram=dram)
                if dram is HBM2:
                    opts = (OptLevel.RO_RN_ESW,)
                else:
                    opts = (OptLevel.RO_RN_ESW, OptLevel.SEG_RN_ESW)
                best = min(
                    provider.sim_point(name, config, opt).runtime_s
                    for opt in opts
                )
                speedups.append(cpu_time / best)
            rows.append([name, dram.name] + speedups)
            scaling[name][dram.name] = speedups
    return ExperimentResult(
        name="Figure 8: speedup scaling with GE count (vs CPU)",
        headers=headers,
        rows=rows,
        extras={"scaling": scaling, "ge_counts": list(ge_counts)},
    )


# ---------------------------------------------------------------------------
# Figure 9 -- energy
# ---------------------------------------------------------------------------


def fig9_energy(
    quick: bool = False, provider: Optional[DataProvider] = None
) -> ExperimentResult:
    """Component energy breakdown + energy efficiency over the CPU."""
    provider = _provider(provider)
    config = _scaled_config(dram=HBM2)
    headers = [
        "Benchmark", "Half-Gate%", "Crossbar%", "SRAM%", "Others%",
        "HBM2 PHY%", "Eff vs CPU (Kx)",
    ]
    rows: List[List[Any]] = []
    efficiencies: List[float] = []
    for name in _workload_names(quick):
        sim = provider.sim_point(name, config, OptLevel.RO_RN_ESW)
        energy = energy_model(sim, config)
        shares = energy.normalized()
        cpu_time = provider.cpu_time(name)
        eff = energy.efficiency_vs_cpu(cpu_time)
        efficiencies.append(eff)
        rows.append([
            name,
            100 * shares.get("Half-Gate", 0.0),
            100 * shares.get("Crossbar", 0.0),
            100 * shares.get("SRAM", 0.0),
            100 * shares.get("Others", 0.0),
            100 * shares.get("HBM2 PHY", 0.0),
            eff / 1e3,
        ])
    avg_halfgate = sum(row[1] for row in rows) / len(rows)
    return ExperimentResult(
        name="Figure 9: normalized energy breakdown (full reorder, HBM2)",
        headers=headers,
        rows=rows,
        notes=(
            f"Half-Gate avg share {avg_halfgate:.0f}% (paper: 61%); "
            f"avg efficiency {sum(efficiencies)/len(efficiencies)/1e3:.0f} Kx "
            "(paper avg: 53 Kx)"
        ),
        extras={"efficiencies": efficiencies},
    )


# ---------------------------------------------------------------------------
# Figure 10 -- slowdown vs plaintext
# ---------------------------------------------------------------------------


def fig10_plaintext(
    quick: bool = False, provider: Optional[DataProvider] = None
) -> ExperimentResult:
    """GC slowdown relative to plaintext: CPU GC, HAAC DDR4, HAAC HBM2."""
    provider = _provider(provider)
    headers = ["Benchmark", "CPU GC", "HAAC DDR4", "HAAC HBM2"]
    rows: List[List[Any]] = []
    slowdowns: Dict[str, List[float]] = {"cpu": [], "ddr4": [], "hbm2": []}
    integer_hbm2: List[float] = []
    for name in _workload_names(quick):
        plain = provider.plaintext_time(name)
        cpu_time = provider.cpu_time(name)
        haac_times: Dict[str, float] = {}
        for label, dram in (("ddr4", DDR4), ("hbm2", HBM2)):
            config = _scaled_config(dram=dram)
            haac_times[label] = min(
                provider.sim_point(name, config, opt).runtime_s
                for opt in (OptLevel.RO_RN_ESW, OptLevel.SEG_RN_ESW)
            )
        row = [
            name,
            cpu_time / plain,
            haac_times["ddr4"] / plain,
            haac_times["hbm2"] / plain,
        ]
        rows.append(row)
        slowdowns["cpu"].append(row[1])
        slowdowns["ddr4"].append(row[2])
        slowdowns["hbm2"].append(row[3])
        if name != "GradDesc":
            integer_hbm2.append(row[3])
    notes = (
        f"geomean slowdowns: CPU GC {geomean(slowdowns['cpu']):.0f}x, "
        f"HAAC DDR4 {geomean(slowdowns['ddr4']):.1f}x, "
        f"HAAC HBM2 {geomean(slowdowns['hbm2']):.1f}x "
        f"(integer-only HBM2 {geomean(integer_hbm2):.1f}x; paper: 76x all / 23x integer) | "
        f"HAAC-DDR4 speedup over CPU GC: "
        f"{geomean([c/d for c, d in zip(slowdowns['cpu'], slowdowns['ddr4'])]):.0f}x "
        "(paper: 589x)"
    )
    return ExperimentResult(
        name="Figure 10: slowdown vs plaintext",
        headers=headers,
        rows=rows,
        notes=notes,
        extras={"slowdowns": slowdowns},
    )
