#!/usr/bin/env python
"""Deprecated shim -- use ``python -m repro bench sim``.

Forwards unchanged to :mod:`repro.bench.sim` (same flags, same
``"sim"`` section merged into ``BENCH_throughput.json``) and warns once.
"""

from __future__ import annotations

import pathlib
import sys
import warnings

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench import sim as _suite  # noqa: E402
from repro.bench.sim import (  # noqa: E402,F401  (re-exported for importers)
    SIM_SCHEMA,
    measure_batched_grid,
    measure_engines,
    measure_sim,
)


def main(argv=None) -> int:
    warnings.warn(
        "scripts/bench_sim.py is deprecated; use "
        "`python -m repro bench sim`",
        DeprecationWarning,
        stacklevel=2,
    )
    return _suite.main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
