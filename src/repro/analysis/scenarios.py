"""Scenario-grid analysis: render ``BENCH_scenarios.json`` as report text.

``scripts/bench_scenarios.py`` sweeps queue SRAM per GE (coupled model)
and DRAM bandwidth (decoupled model) for several workloads and persists
the grid -- including a per-workload ``summary`` block with the paper's
two design-space answers: the queue-SRAM *knee* where coupling costs
under :data:`KNEE_TOLERANCE` versus full decoupling, and the bandwidth
*flip point* where the workload stops being memory-bound.  This module
turns that artifact into the knee/flip table plus ASCII sweep charts
(reusing :mod:`repro.analysis.charts`), surfaced as ``repro scenarios``
on the CLI.

The loader accepts any ``repro.bench_scenarios/*`` schema version; v1
artifacts predate the persisted ``summary`` block, so one is derived on
load and every renderer can treat workloads uniformly.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

from .charts import bar_chart, log_bar_chart
from .report import render_table

__all__ = [
    "KNEE_TOLERANCE",
    "SCHEMA_PREFIX",
    "default_artifact_path",
    "load_report",
    "summarize_sweeps",
    "summary_table",
    "queue_chart",
    "bandwidth_chart",
    "render_report",
]

SCHEMA_PREFIX = "repro.bench_scenarios/"

#: A queue point within 1% of the decoupled runtime counts as converged
#: (shared with scripts/bench_scenarios.py so artifact and analysis
#: agree on what "knee" means).
KNEE_TOLERANCE = 1.01

_NOT_REACHED = "not reached in sweep"


def default_artifact_path() -> Optional[pathlib.Path]:
    """``./BENCH_scenarios.json`` if present, else the committed artifact."""
    local = pathlib.Path("BENCH_scenarios.json")
    if local.is_file():
        return local
    committed = (
        pathlib.Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "BENCH_scenarios.json"
    )
    if committed.is_file():
        return committed
    return None


def summarize_sweeps(
    queue_sweep: Sequence[dict],
    bandwidth_sweep: Sequence[dict],
    scenarios: Optional[int] = None,
) -> dict:
    """Knee/flip summary of one workload's sweeps.

    ``None`` values mean the sweep never got there (rendered as
    ``"not reached in sweep"``).  ``scenarios`` defaults to every
    simulated point: each sweep entry plus the decoupled baseline.
    """
    knee = next(
        (
            point["queue_bytes_per_ge"]
            for point in queue_sweep
            if point["slowdown_vs_decoupled"] <= KNEE_TOLERANCE
        ),
        None,
    )
    flip = next(
        (
            point["gb_s"]
            for point in bandwidth_sweep
            if not point["memory_bound"]
        ),
        None,
    )
    if scenarios is None:
        scenarios = 1 + len(queue_sweep) + len(bandwidth_sweep)
    return {
        "scenarios": scenarios,
        "queue_knee_bytes_per_ge": knee,
        "compute_bound_from_gb_s": flip,
    }


def load_report(path: Union[str, pathlib.Path]) -> dict:
    """Parse and validate a ``BENCH_scenarios.json`` artifact."""
    data = json.loads(pathlib.Path(path).read_text())
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(SCHEMA_PREFIX):
        raise ValueError(
            f"{path}: not a scenario-grid artifact "
            f"(schema {schema!r}, expected {SCHEMA_PREFIX}*)"
        )
    workloads = data.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        raise ValueError(f"{path}: artifact has no workload sections")
    for section in workloads.values():
        if "summary" not in section:
            section["summary"] = summarize_sweeps(
                section.get("queue_sweep", []),
                section.get("bandwidth_sweep", []),
            )
    return data


def _knee_cell(summary: dict) -> str:
    knee = summary.get("queue_knee_bytes_per_ge")
    return f"{knee}B/GE" if knee is not None else _NOT_REACHED


def _flip_cell(summary: dict) -> str:
    flip = summary.get("compute_bound_from_gb_s")
    return f"{flip:g} GB/s" if flip is not None else _NOT_REACHED


def summary_table(report: dict, workloads: Optional[Sequence[str]] = None) -> str:
    """The knee/flip-point table, one row per workload."""
    rows: List[list] = []
    for name, section in _sections(report, workloads):
        summary = section["summary"]
        sweep_ms = section.get("sweep_seconds")
        speedup = section.get("batched_speedup")
        rows.append([
            name,
            section.get("instructions", 0),
            _knee_cell(summary),
            _flip_cell(summary),
            summary.get("scenarios", 0),
            f"{sweep_ms * 1000:.1f}" if sweep_ms is not None else "-",
            f"{speedup:.1f}x" if speedup is not None else "-",
        ])
    return render_table(
        ["Workload", "Instrs", "Queue knee", "Compute-bound from",
         "Scenarios", "Sweep (ms)", "Batched vs serial"],
        rows,
        title="Scenario grid: queue-SRAM knee and memory-bound flip point",
    )


def queue_chart(name: str, section: dict) -> str:
    """Coupled slowdown vs queue SRAM per GE (linear bars)."""
    items = [
        (
            f"{point['queue_bytes_per_ge']}B",
            float(point["slowdown_vs_decoupled"]),
        )
        for point in section.get("queue_sweep", [])
    ]
    return bar_chart(
        items,
        title=f"{name}: coupled slowdown vs decoupled, by queue bytes/GE",
        unit="x",
    )


def bandwidth_chart(name: str, section: dict) -> str:
    """Decoupled runtime vs DRAM bandwidth (log bars, * = memory-bound)."""
    items = [
        (
            f"{point['gb_s']:g}GB/s" + ("*" if point["memory_bound"] else ""),
            float(point["runtime_cycles"]),
        )
        for point in section.get("bandwidth_sweep", [])
    ]
    return log_bar_chart(
        items,
        title=f"{name}: decoupled runtime cycles by DRAM bandwidth "
        "(log scale, * = memory-bound)",
    )


def _sections(
    report: dict, workloads: Optional[Sequence[str]]
) -> "List[tuple[str, dict]]":
    available: Dict[str, dict] = report.get("workloads", {})
    if workloads is None:
        return list(available.items())
    unknown = [name for name in workloads if name not in available]
    if unknown:
        raise KeyError(
            f"workloads not in artifact: {', '.join(unknown)} "
            f"(available: {', '.join(available)})"
        )
    return [(name, available[name]) for name in workloads]


def render_report(
    report: dict,
    workloads: Optional[Sequence[str]] = None,
    source: Optional[str] = None,
) -> str:
    """Full text rendering: header, knee/flip table, per-workload charts."""
    header = f"scenario grid ({report.get('schema', '?')}"
    engine = report.get("engine")
    if engine:
        header += f", engine={engine}"
    header += ")"
    if source:
        header += f" from {source}"
    blocks = [header, "", summary_table(report, workloads)]
    for name, section in _sections(report, workloads):
        blocks.append("")
        blocks.append(queue_chart(name, section))
        blocks.append("")
        blocks.append(bandwidth_chart(name, section))
    return "\n".join(blocks)
