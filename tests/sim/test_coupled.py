"""Coupled / pull-based memory models (decoupling ablation)."""

import pytest

from repro.core.compiler import OptLevel, compile_circuit
from repro.sim.config import HaacConfig
from repro.sim.coupled import (
    DRAM_LATENCY_CYCLES,
    coupled_runtime,
    pull_based_runtime,
)
from repro.sim.timing import simulate


@pytest.fixture
def compiled_and_config(mixed_circuit):
    config = HaacConfig(n_ges=4, sww_bytes=64 * 16)
    result = compile_circuit(
        mixed_circuit, config.window, config.n_ges,
        opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
    )
    return result, config


class TestCoupled:
    def test_generous_queues_match_decoupled(self, compiled_and_config):
        result, config = compiled_and_config
        coupled = coupled_runtime(
            result.streams, config, queue_bytes_per_ge=1 << 30
        )
        assert coupled.slowdown_vs_decoupled == pytest.approx(1.0, abs=1e-9)

    def test_never_faster_than_decoupled(self, compiled_and_config):
        result, config = compiled_and_config
        for queue_bytes in (64, 1024, 1 << 20):
            coupled = coupled_runtime(result.streams, config, queue_bytes)
            assert coupled.slowdown_vs_decoupled >= 1.0 - 1e-9

    def test_smaller_queues_never_faster(self, compiled_and_config):
        result, config = compiled_and_config
        small = coupled_runtime(result.streams, config, 64)
        large = coupled_runtime(result.streams, config, 64 * 1024)
        assert small.cycles >= large.cycles - 1e-9

    def test_stall_cycles_nonnegative(self, compiled_and_config):
        result, config = compiled_and_config
        coupled = coupled_runtime(result.streams, config, 256)
        assert coupled.stall_cycles >= 0

    def test_runtime_seconds(self, compiled_and_config):
        result, config = compiled_and_config
        coupled = coupled_runtime(result.streams, config)
        assert coupled.runtime_s == pytest.approx(
            coupled.cycles / config.ge_clock_hz
        )


class TestPullBased:
    def test_never_faster_than_decoupled(self, compiled_and_config):
        result, config = compiled_and_config
        pull = pull_based_runtime(result.streams, config)
        assert pull.slowdown_vs_decoupled >= 1.0 - 1e-9

    def test_latency_scales_penalty(self, compiled_and_config):
        result, config = compiled_and_config
        if result.streams.oor_reads == 0:
            pytest.skip("no OoR reads at this window size")
        cheap = pull_based_runtime(result.streams, config, miss_latency=10)
        expensive = pull_based_runtime(result.streams, config, miss_latency=200)
        assert expensive.cycles > cheap.cycles

    def test_no_oor_means_no_penalty(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=1 << 22)  # everything fits
        result = compile_circuit(
            mixed_circuit, config.window, config.n_ges,
            opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
        )
        pull = pull_based_runtime(result.streams, config)
        decoupled = simulate(result.streams, config)
        assert pull.cycles == pytest.approx(decoupled.runtime_cycles)

    def test_default_latency_sane(self):
        assert 20 <= DRAM_LATENCY_CYCLES <= 200
