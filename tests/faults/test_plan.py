"""FaultPlan spec parsing, determinism and resolution precedence."""

from __future__ import annotations

import pytest

from repro.faults import (
    FAULT_KINDS,
    FRAME_FAULTS,
    PROCESS_CHAOS,
    PROCESS_FAULTS,
    FaultPlan,
    parse_fault_spec,
    resolve_fault_plan,
)
from repro.sim.config import HaacConfig


class TestParseFaultSpec:
    def test_rates_and_seed(self):
        plan = parse_fault_spec("drop:0.05,tamper:0.1,seed=7")
        assert plan.rates == {"drop": 0.05, "tamper": 0.1}
        assert plan.seed == 7

    def test_bare_name_means_rate_one(self):
        plan = parse_fault_spec("kill_worker,tear_cache:0.5")
        assert plan.rates == {"kill_worker": 1.0, "tear_cache": 0.5}

    def test_seed_accepts_hex(self):
        assert parse_fault_spec("drop:1,seed=0x10").seed == 16

    def test_empty_parts_ignored(self):
        plan = parse_fault_spec(" drop:0.5 , , seed=3 ")
        assert plan.rates == {"drop": 0.5}
        assert plan.seed == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_spec("explode:0.5")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="bad fault rate"):
            parse_fault_spec("drop:lots")

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError, match="bad fault seed"):
            parse_fault_spec("drop:1,seed=banana")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError, match="out of"):
            parse_fault_spec("drop:1.5")

    def test_spec_round_trips(self):
        plan = parse_fault_spec("drop:0.05,corrupt:0.25,seed=9")
        again = parse_fault_spec(plan.spec())
        assert again.rates == plan.rates
        assert again.seed == plan.seed

    def test_kind_constants_cover_registry(self):
        assert set(FAULT_KINDS) == (
            set(FRAME_FAULTS) | set(PROCESS_FAULTS) | set(PROCESS_CHAOS)
        )

    def test_process_chaos_kinds_parse(self):
        plan = parse_fault_spec("kill_party:0.5,sever:0.25,stall,seed=4")
        assert plan.rates == {
            "kill_party": 0.5, "sever": 0.25, "stall": 1.0,
        }

    def test_chaos_kinds_draw_unconditionally(self):
        # Like frame_faults: the RNG stream depends only on the call
        # sequence, never on which kinds happen to be armed -- so two
        # plans differing only in armed chaos kinds stay in lockstep.
        a = parse_fault_spec("kill_party,seed=6")
        b = parse_fault_spec("stall,seed=6")
        for seq in range(10):
            a.chaos_kinds(f"s#{seq}")
            b.chaos_kinds(f"s#{seq}")
        assert a.choose_offset(1000) == b.choose_offset(1000)

    def test_chaos_kinds_priority_order_and_determinism(self):
        spec = "kill_party:0.4,sever:0.4,stall:0.4,seed=13"
        a = parse_fault_spec(spec)
        b = parse_fault_spec(spec)
        draws_a = [a.chaos_kinds(f"s#{i}") for i in range(20)]
        draws_b = [b.chaos_kinds(f"s#{i}") for i in range(20)]
        assert draws_a == draws_b
        # Kinds come back in PROCESS_CHAOS order, ready for the
        # supervisor's pick-first priority rule.
        for kinds in draws_a:
            order = [PROCESS_CHAOS.index(k) for k in kinds]
            assert order == sorted(order)
        assert any(len(kinds) > 1 for kinds in draws_a)


class TestFaultPlanDeterminism:
    @staticmethod
    def _drive(plan):
        """A fixed consultation sequence mixing every draw type."""
        plan.reset()
        trace = []
        for seq in range(40):
            trace.append(tuple(plan.frame_faults(f"wire#{seq}")))
            trace.append(plan.choose_offset(17))
            trace.append(plan.kill_worker())
            trace.append(plan.tear_cache())
        return trace, plan.signature()

    def test_same_seed_same_schedule(self):
        spec = "drop:0.3,corrupt:0.2,tamper:0.1,duplicate:0.2,kill_worker:0.1"
        a = parse_fault_spec(spec + ",seed=42")
        b = parse_fault_spec(spec + ",seed=42")
        assert self._drive(a) == self._drive(b)

    def test_different_seed_different_schedule(self):
        spec = "drop:0.3,corrupt:0.3,seed="
        a = self._drive(parse_fault_spec(spec + "1"))
        b = self._drive(parse_fault_spec(spec + "2"))
        assert a != b

    def test_reset_replays_from_the_top(self):
        plan = parse_fault_spec("drop:0.4,delay:0.3,seed=5")
        first = self._drive(plan)
        assert self._drive(plan) == first

    def test_unarmed_kinds_still_consume_rng(self):
        # Arming extra kinds at rate 0 must not shift later decisions:
        # the draw stream depends only on the consultation sequence.
        armed = parse_fault_spec("drop:0.3,seed=8")
        padded = parse_fault_spec("drop:0.3,tamper:0,corrupt:0.0,seed=8")
        assert self._drive(armed) == self._drive(padded)

    def test_signature_records_order_and_sites(self):
        plan = parse_fault_spec("drop:1,seed=0")
        plan.frame_faults("a#0")
        plan.frame_faults("b#1")
        sites = [site for site, kind in plan.signature() if kind == "drop"]
        assert sites == ["a#0", "b#1"]
        assert [event.seq for event in plan.injected] == list(
            range(len(plan.injected))
        )


class TestResolveFaultPlan:
    def test_none_everywhere_resolves_to_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert resolve_fault_plan(None) is None

    def test_plan_instance_passes_through(self):
        plan = FaultPlan({"drop": 0.5}, seed=3)
        assert resolve_fault_plan(plan) is plan

    def test_spec_string_wins_over_config_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:0.9")
        config = HaacConfig().with_fault_spec("delay:0.8")
        plan = resolve_fault_plan("drop:0.1,seed=4", config=config)
        assert plan.rates == {"drop": 0.1}
        assert plan.seed == 4

    def test_config_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:0.9")
        config = HaacConfig().with_fault_spec("delay:0.8,seed=2")
        plan = resolve_fault_plan(None, config=config)
        assert plan.rates == {"delay": 0.8}

    def test_env_is_the_last_resort(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "truncate:0.7,seed=11")
        plan = resolve_fault_plan(None)
        assert plan.rates == {"truncate": 0.7}
        assert plan.seed == 11

    def test_fresh_plan_per_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        a = resolve_fault_plan("drop:0.5,seed=1")
        b = resolve_fault_plan("drop:0.5,seed=1")
        assert a is not b

    def test_rejects_non_spec_types(self):
        with pytest.raises(TypeError):
            resolve_fault_plan(0.5)
