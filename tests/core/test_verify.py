"""Static stream verifier: accepts clean compiles, catches corruption."""

from dataclasses import replace

import pytest

from repro.core.compiler import OptLevel, compile_circuit
from repro.core.verify import StreamVerificationError, verify_streams
from repro.sim.config import HaacConfig
from repro.workloads import get_workload


@pytest.fixture
def config():
    return HaacConfig(n_ges=4, sww_bytes=64 * 16)


@pytest.fixture
def compiled(mixed_circuit, config):
    return compile_circuit(
        mixed_circuit, config.window, config.n_ges,
        opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
    )


class TestCleanCompiles:
    @pytest.mark.parametrize("opt", list(OptLevel))
    def test_every_opt_level_verifies(self, mixed_circuit, config, opt):
        result = compile_circuit(
            mixed_circuit, config.window, config.n_ges,
            opt=opt, params=config.schedule_params(),
        )
        report = verify_streams(result.streams)
        assert report.n_instructions == len(result.program.instructions)
        assert report.oor_reads == result.streams.oor_reads

    def test_workload_compile_verifies(self, config):
        built = get_workload("Merse").build(state_n=4, state_m=2, n_outputs=4)
        result = compile_circuit(
            built.circuit, config.window, config.n_ges,
            opt=OptLevel.SEG_RN_ESW, params=config.schedule_params(),
        )
        verify_streams(result.streams)


class TestCorruptionDetection:
    def test_swapped_oor_queue(self, compiled):
        streams = compiled.streams
        for ge in streams.ges:
            distinct = [
                i for i in range(len(ge.oor_addresses) - 1)
                if ge.oor_addresses[i] != ge.oor_addresses[i + 1]
            ]
            if distinct:
                i = distinct[0]
                ge.oor_addresses[i], ge.oor_addresses[i + 1] = (
                    ge.oor_addresses[i + 1],
                    ge.oor_addresses[i],
                )
                break
        else:
            pytest.skip("no adjacent distinct OoR pops")
        with pytest.raises(StreamVerificationError, match="OoRW queue"):
            verify_streams(compiled.streams)

    def test_cleared_live_bit(self, compiled):
        streams = compiled.streams
        program = streams.program
        target = None
        for ge in streams.ges:
            for wire in ge.oor_addresses:
                if wire >= program.n_inputs:
                    target = wire - program.n_inputs
                    break
            if target is not None:
                break
        if target is None:
            pytest.skip("no internal OoR wires")
        program.instructions[target] = replace(
            program.instructions[target], live=False
        )
        ge = streams.ges[streams.ge_of[target]]
        local = ge.positions.index(target)
        ge.instructions[local] = program.instructions[target]
        with pytest.raises(StreamVerificationError, match="live bit"):
            verify_streams(streams)

    def test_flipped_oor_flag(self, compiled):
        streams = compiled.streams
        ge = next(g for g in streams.ges if g.positions)
        ge.oor_a[0] = not ge.oor_a[0]
        with pytest.raises(StreamVerificationError, match="OoR flag"):
            verify_streams(streams)

    def test_duplicated_assignment(self, compiled):
        streams = compiled.streams
        donor = next(g for g in streams.ges if len(g.positions) > 1)
        receiver = streams.ges[(streams.ge_of[donor.positions[0]] + 1) % streams.n_ges]
        # Claim the same position twice.
        receiver.positions.append(donor.positions[-1])
        receiver.instructions.append(donor.instructions[-1])
        receiver.oor_a.append(donor.oor_a[-1])
        receiver.oor_b.append(donor.oor_b[-1])
        with pytest.raises(StreamVerificationError):
            verify_streams(streams)

    def test_broken_issue_order(self, compiled):
        streams = compiled.streams
        ge = next(g for g in streams.ges if len(g.positions) >= 2)
        p0, p1 = ge.positions[0], ge.positions[1]
        streams.issue_cycle[p1] = streams.issue_cycle[p0]  # same cycle
        with pytest.raises(StreamVerificationError, match="issue"):
            verify_streams(streams)

    def test_premature_issue(self, compiled):
        streams = compiled.streams
        program = streams.program
        # Find a consumer of an internal wire and pull its issue to 0.
        for position, gate in enumerate(program.netlist.gates):
            if any(w >= program.n_inputs for w in gate.inputs()):
                streams.issue_cycle[position] = 0
                break
        with pytest.raises(StreamVerificationError):
            verify_streams(streams)
