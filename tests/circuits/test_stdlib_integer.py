"""Integer arithmetic circuits vs Python integer semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.builder import CircuitBuilder
from repro.circuits.netlist import GateOp
from repro.circuits.stdlib.integer import (
    abs_value,
    add,
    add_with_carry,
    decode_int,
    decode_signed,
    encode_int,
    full_adder,
    greater_than,
    increment,
    less_than,
    less_than_signed,
    min_max,
    mul,
    mul_full,
    negate,
    square,
    sub,
)

_W = 8
_VALS = st.integers(0, (1 << _W) - 1)


def _binary_op(build_fn, a, b, width=_W):
    builder = CircuitBuilder()
    xs = builder.add_garbler_inputs(width)
    ys = builder.add_evaluator_inputs(width)
    builder.mark_outputs(build_fn(builder, xs, ys))
    circuit = builder.build()
    return circuit.eval_plain(encode_int(a, width), encode_int(b, width))


def _unary_op(build_fn, a, width=_W):
    builder = CircuitBuilder()
    xs = builder.add_garbler_inputs(width)
    builder.mark_outputs(build_fn(builder, xs))
    circuit = builder.build()
    return circuit.eval_plain(encode_int(a, width), [])


class TestFullAdder:
    def test_single_table(self):
        """The GC full adder must cost exactly one AND gate."""
        builder = CircuitBuilder()
        a, x, c = builder.add_garbler_inputs(3)
        full_adder(builder, a, x, c)
        circuit_gates = builder._gates
        assert sum(1 for g in circuit_gates if g.op is GateOp.AND) == 1

    def test_truth_table(self):
        builder = CircuitBuilder()
        a, x, c = builder.add_garbler_inputs(3)
        s, cout = full_adder(builder, a, x, c)
        builder.mark_outputs([s, cout])
        circuit = builder.build()
        for va in (0, 1):
            for vx in (0, 1):
                for vc in (0, 1):
                    total = va + vx + vc
                    assert circuit.eval_plain([va, vx, vc], []) == [
                        total & 1,
                        total >> 1,
                    ]


class TestAddSub:
    @settings(max_examples=40, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_add(self, a, b):
        got = decode_int(_binary_op(add, a, b))
        assert got == (a + b) % 256

    @settings(max_examples=40, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_sub(self, a, b):
        got = decode_int(_binary_op(sub, a, b))
        assert got == (a - b) % 256

    @settings(max_examples=20, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_add_with_carry_out(self, a, b):
        def build(builder, xs, ys):
            bits, carry = add_with_carry(builder, xs, ys, builder.const_zero())
            return bits + [carry]

        out = _binary_op(build, a, b)
        assert decode_int(out) == a + b  # 9 bits: exact sum

    def test_add_width_mismatch(self):
        builder = CircuitBuilder()
        xs = builder.add_garbler_inputs(4)
        with pytest.raises(ValueError):
            add(builder, xs[:2], xs[:3])


class TestUnary:
    @settings(max_examples=30, deadline=None)
    @given(a=_VALS)
    def test_negate(self, a):
        assert decode_int(_unary_op(negate, a)) == (-a) % 256

    @settings(max_examples=30, deadline=None)
    @given(a=_VALS)
    def test_increment(self, a):
        assert decode_int(_unary_op(increment, a)) == (a + 1) % 256

    @settings(max_examples=30, deadline=None)
    @given(a=_VALS)
    def test_abs(self, a):
        signed = a - 256 if a & 0x80 else a
        expected = abs(signed) % 256
        assert decode_int(_unary_op(abs_value, a)) == expected

    @settings(max_examples=20, deadline=None)
    @given(a=_VALS)
    def test_square(self, a):
        assert decode_int(_unary_op(square, a)) == a * a


class TestCompare:
    @settings(max_examples=40, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_unsigned(self, a, b):
        def build(builder, xs, ys):
            return [less_than(builder, xs, ys), greater_than(builder, xs, ys)]

        got = _binary_op(build, a, b)
        assert got == [int(a < b), int(a > b)]

    @settings(max_examples=40, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_signed(self, a, b):
        def build(builder, xs, ys):
            return [less_than_signed(builder, xs, ys)]

        sa = a - 256 if a & 0x80 else a
        sb = b - 256 if b & 0x80 else b
        assert _binary_op(build, a, b) == [int(sa < sb)]

    @settings(max_examples=30, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_min_max(self, a, b):
        def build(builder, xs, ys):
            lo, hi = min_max(builder, xs, ys)
            return lo + hi

        out = _binary_op(build, a, b)
        assert decode_int(out[:8]) == min(a, b)
        assert decode_int(out[8:]) == max(a, b)

    @settings(max_examples=20, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_min_max_signed(self, a, b):
        def build(builder, xs, ys):
            lo, hi = min_max(builder, xs, ys, signed=True)
            return lo + hi

        out = _binary_op(build, a, b)
        sa = a - 256 if a & 0x80 else a
        sb = b - 256 if b & 0x80 else b
        assert decode_signed(out[:8]) == min(sa, sb)
        assert decode_signed(out[8:]) == max(sa, sb)


class TestMul:
    @settings(max_examples=40, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_mul_modular(self, a, b):
        assert decode_int(_binary_op(mul, a, b)) == (a * b) % 256

    @settings(max_examples=40, deadline=None)
    @given(a=_VALS, b=_VALS)
    def test_mul_full(self, a, b):
        assert decode_int(_binary_op(mul_full, a, b)) == a * b

    def test_mul_width_mismatch(self):
        builder = CircuitBuilder()
        xs = builder.add_garbler_inputs(6)
        with pytest.raises(ValueError):
            mul(builder, xs[:2], xs[:4])


class TestEncodeDecode:
    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(-128, 127))
    def test_signed_roundtrip(self, a):
        assert decode_signed(encode_int(a, 8)) == a

    @settings(max_examples=30, deadline=None)
    @given(a=_VALS)
    def test_unsigned_roundtrip(self, a):
        assert decode_int(encode_int(a, 8)) == a

    def test_bad_width(self):
        with pytest.raises(ValueError):
            encode_int(1, 0)
