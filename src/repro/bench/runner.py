"""Shared plumbing for every ``repro bench`` suite.

One place owns what the five historical ``scripts/bench_*.py`` each
reimplemented: the common CLI flags (``--quick``, ``--repeats``,
``--json``/``--out``, ``--store``), best-of-N timing, and the
merge-into-``BENCH_throughput.json`` semantics (uniform schema header,
section keys, owned-key replacement so a re-run never leaves stale
sub-sections behind).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..store import ResultStore, resolve_result_store

__all__ = [
    "THROUGHPUT_SCHEMA",
    "BenchRunner",
    "add_common_arguments",
]

#: Schema header of the merged BENCH_throughput.json artifact.
THROUGHPUT_SCHEMA = "repro.bench_throughput/v1"

#: Top-level keys the ``throughput`` suite owns inside the merged
#: report.  They are replaced wholesale on each run -- ``parallel`` in
#: particular must vanish when the sweep is skipped, not linger from a
#: previous run.
_THROUGHPUT_KEYS = (
    "circuit", "backends", "speedup_vs_scalar", "skipped", "parallel",
)


def add_common_arguments(
    parser: argparse.ArgumentParser, default_out: str, store: bool = False
) -> None:
    """The flags every suite shares (``--store`` only where it applies)."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test lane: small circuits, one repeat",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N timing repeats (default: suite-specific, or 1 "
        "with --quick; an explicit value always wins)",
    )
    parser.add_argument(
        "--json",
        "--out",
        dest="out",
        default=default_out,
        help=f"output artifact path (default: {default_out})",
    )
    if store:
        parser.add_argument(
            "--store",
            nargs="?",
            const=True,
            default=None,
            metavar="DIR",
            help="content-addressed result store: flag alone for the "
            "default directory, or a path; cached grid points are "
            "served without replaying (default: $REPRO_RESULT_STORE)",
        )


class BenchRunner:
    """Execution context shared by all bench suites.

    Resolves the common flags once, times callables best-of-N, and
    writes/merges the JSON artifacts so every suite reports through the
    same path.
    """

    def __init__(
        self,
        out: str,
        quick: bool = False,
        repeats: Optional[int] = None,
        store: Any = None,
    ) -> None:
        self.out = pathlib.Path(out)
        self.quick = quick
        self._repeats = repeats
        self.store: Optional[ResultStore] = resolve_result_store(store)

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "BenchRunner":
        return cls(
            out=args.out,
            quick=args.quick,
            repeats=getattr(args, "repeats", None),
            store=getattr(args, "store", None),
        )

    def repeats(self, full_default: int) -> int:
        """Explicit ``--repeats`` wins; otherwise 1 under ``--quick``."""
        if self._repeats is not None:
            return self._repeats
        return 1 if self.quick else full_default

    def best_of(
        self, fn: Callable[[], Any], repeats: Optional[int] = None
    ) -> Tuple[float, Any]:
        """(best wall seconds, last value) over N runs of ``fn``."""
        count = repeats if repeats is not None else self.repeats(1)
        best = None
        value = None
        for _ in range(max(1, count)):
            start = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, value

    # -- artifact I/O ----------------------------------------------------

    def _load_report(self) -> Dict[str, Any]:
        if self.out.exists():
            return json.loads(self.out.read_text())
        return {"schema": THROUGHPUT_SCHEMA}

    def merge_section(
        self, section: Dict[str, Any], key: Optional[str] = None
    ) -> pathlib.Path:
        """Merge one suite's output into the shared throughput report.

        ``key=None`` is the throughput suite itself: its owned top-level
        keys are replaced (other suites' sections survive).  Named keys
        (``sim``/``protocol``/``service``) replace that sub-section.
        """
        data = self._load_report()
        data.setdefault("schema", THROUGHPUT_SCHEMA)
        if key is None:
            for owned in _THROUGHPUT_KEYS:
                data.pop(owned, None)
            data.update(section)
        else:
            data[key] = section
        return self.write_artifact(data)

    def write_artifact(self, report: Dict[str, Any]) -> pathlib.Path:
        """Standalone artifact write (scenarios, or the merged report)."""
        self.out.write_text(json.dumps(report, indent=2) + "\n")
        return self.out
