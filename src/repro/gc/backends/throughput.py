"""Garbling-throughput measurement shared by scripts/ and benchmarks/.

Times whole-circuit garbling and evaluation per backend and reports
gates-per-second, the metric HAAC's evaluation revolves around.  The
``scalar`` entry times the audited per-gate reference walk
(:func:`repro.gc.garble.garble_circuit`); every other backend times the
level-batched engine.  The emitted dict follows a stable schema
(``repro.bench_throughput/v1``) so successive PRs can diff perf
trajectories mechanically.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

from ...circuits.builder import CircuitBuilder
from ...circuits.netlist import Circuit
from ...circuits.stdlib.aes_circuit import build_aes128_circuit
from ...circuits.stdlib.integer import add, less_than, mul
from ..evaluate import evaluate_circuit, evaluate_circuit_batched
from ..garble import garble_circuit, garble_circuit_batched
from .base import BackendUnavailable, get_backend
from .parallel import ParallelLabelHashBackend

__all__ = [
    "SCHEMA",
    "BENCH_CIRCUITS",
    "build_bench_circuit",
    "measure_throughput",
    "measure_parallel_scaling",
]

SCHEMA = "repro.bench_throughput/v1"


def _adder(width: int) -> Circuit:
    builder = CircuitBuilder()
    xs = builder.add_garbler_inputs(width)
    ys = builder.add_evaluator_inputs(width)
    builder.mark_outputs(add(builder, xs, ys))
    return builder.build(f"adder{width}")


def _mixed8() -> Circuit:
    builder = CircuitBuilder()
    xs = builder.add_garbler_inputs(8)
    ys = builder.add_evaluator_inputs(8)
    builder.mark_outputs(add(builder, xs, ys))
    builder.mark_outputs(mul(builder, xs, ys))
    builder.mark_outputs([less_than(builder, xs, ys)])
    return builder.build("mixed8")


BENCH_CIRCUITS = {
    "aes128": build_aes128_circuit,
    "adder8": lambda: _adder(8),
    "adder32": lambda: _adder(32),
    "mixed8": _mixed8,
}


def build_bench_circuit(name: str) -> Circuit:
    """Build one of the named benchmark circuits."""
    try:
        factory = BENCH_CIRCUITS[name]
    except KeyError:
        raise ValueError(
            f"unknown bench circuit {name!r}; choose from {sorted(BENCH_CIRCUITS)}"
        ) from None
    return factory()


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def measure_throughput(
    circuit: Circuit,
    backends: Optional[Sequence[str]] = None,
    repeats: int = 2,
    seed: int = 0,
    rekeyed: bool = True,
) -> Dict:
    """Measure garble/evaluate gates-per-second for each backend.

    Unavailable backends are reported under ``skipped`` rather than
    failing, so the same invocation works on NumPy-less machines.
    Timings are best-of-``repeats`` (the first batched run also pays the
    one-time schedule-plan build, which is cached on the circuit).
    """
    if backends is None:
        backends = ["scalar", "numpy"]
    stats = circuit.stats()
    n_gates = stats.gates
    n_and = stats.and_gates

    results: Dict[str, Dict] = {}
    skipped: List[Dict[str, str]] = []
    reference = garble_circuit(circuit, seed=seed, rekeyed=rekeyed)
    input_labels = [
        reference.input_label(wire, 0) for wire in range(circuit.n_inputs)
    ]
    for name in backends:
        if name == "scalar":
            garble_fn = lambda: garble_circuit(circuit, seed=seed, rekeyed=rekeyed)
            evaluate_fn = lambda: evaluate_circuit(
                circuit, reference.garbled, input_labels, rekeyed=rekeyed
            )
        else:
            try:
                get_backend(name)
            except BackendUnavailable as exc:
                skipped.append({"backend": name, "reason": str(exc)})
                continue
            garble_fn = lambda name=name: garble_circuit_batched(
                circuit, seed=seed, rekeyed=rekeyed, backend=name
            )
            evaluate_fn = lambda name=name: evaluate_circuit_batched(
                circuit, reference.garbled, input_labels,
                rekeyed=rekeyed, backend=name,
            )
        garble_s = _time_best(garble_fn, repeats)
        evaluate_s = _time_best(evaluate_fn, repeats)
        results[name] = {
            "garble": {
                "seconds": garble_s,
                "gates_per_s": n_gates / garble_s if garble_s else None,
                "and_gates_per_s": n_and / garble_s if garble_s else None,
            },
            "evaluate": {
                "seconds": evaluate_s,
                "gates_per_s": n_gates / evaluate_s if evaluate_s else None,
                "and_gates_per_s": n_and / evaluate_s if evaluate_s else None,
            },
        }

    speedups: Dict[str, Dict[str, float]] = {}
    if "scalar" in results:
        base = results["scalar"]
        for name, entry in results.items():
            if name == "scalar":
                continue
            speedups[name] = {
                "garble": base["garble"]["seconds"] / entry["garble"]["seconds"],
                "evaluate": base["evaluate"]["seconds"]
                / entry["evaluate"]["seconds"],
            }
    return {
        "schema": SCHEMA,
        "circuit": {
            "name": circuit.name,
            "gates": n_gates,
            "and_gates": n_and,
            "levels": stats.levels,
        },
        "rekeyed": rekeyed,
        "repeats": repeats,
        "backends": results,
        "skipped": skipped,
        "speedup_vs_scalar": speedups,
    }


def measure_parallel_scaling(
    circuit: Circuit,
    worker_counts: Sequence[int] = (1, 2, 4),
    repeats: int = 2,
    seed: int = 0,
    rekeyed: bool = True,
    min_batch: Optional[int] = None,
) -> Dict:
    """Gates-per-second of the ``parallel`` backend per worker count.

    The software analogue of the paper's GE-scaling figure: the same
    circuit garbled/evaluated while the AND-level shard pool grows.
    ``workers = 1`` runs the serial batched path (the pool is bypassed),
    so ``speedup_vs_1`` is exactly "parallel vs serial batched".
    ``cpu_count`` is recorded because the curve is only meaningful
    relative to the cores that were actually available.

    Timings are best-of-``repeats``; the first repeat at each worker
    count also pays the one-time pool spawn, which best-of absorbs.
    """
    stats = circuit.stats()
    n_gates = stats.gates
    n_and = stats.and_gates

    entries: Dict[str, Dict] = {}
    pool_fallbacks: Dict[str, str] = {}
    reference = garble_circuit_batched(circuit, seed=seed, rekeyed=rekeyed)
    input_labels = [
        reference.input_label(wire, 0) for wire in range(circuit.n_inputs)
    ]
    for workers in worker_counts:
        backend = ParallelLabelHashBackend(workers=workers, min_batch=min_batch)
        garble_s = _time_best(
            lambda: garble_circuit_batched(
                circuit, seed=seed, rekeyed=rekeyed, backend=backend
            ),
            repeats,
        )
        evaluate_s = _time_best(
            lambda: evaluate_circuit_batched(
                circuit, reference.garbled, input_labels,
                rekeyed=rekeyed, backend=backend,
            ),
            repeats,
        )
        entries[str(workers)] = {
            "garble": {
                "seconds": garble_s,
                "gates_per_s": n_gates / garble_s if garble_s else None,
                "and_gates_per_s": n_and / garble_s if garble_s else None,
            },
            "evaluate": {
                "seconds": evaluate_s,
                "gates_per_s": n_gates / evaluate_s if evaluate_s else None,
                "and_gates_per_s": n_and / evaluate_s if evaluate_s else None,
            },
            "pool_batches": backend.pool_batches,
        }
        if backend.pool_disabled_reason is not None:
            pool_fallbacks[str(workers)] = backend.pool_disabled_reason

    # Only a real 1-worker entry (the serial batched path) is a valid
    # baseline; a sweep like --workers 2,4 records no speedup column
    # rather than a mislabeled one.
    speedups: Dict[str, Dict[str, float]] = {}
    base = entries.get("1")
    for workers, entry in entries.items():
        if base is None or workers == "1":
            continue
        speedups[workers] = {
            "garble": base["garble"]["seconds"] / entry["garble"]["seconds"],
            "evaluate": base["evaluate"]["seconds"] / entry["evaluate"]["seconds"],
        }
    return {
        "cpu_count": os.cpu_count(),
        "inner": ParallelLabelHashBackend(workers=1).inner_name,
        "rekeyed": rekeyed,
        "repeats": repeats,
        "workers": entries,
        "speedup_vs_1": speedups,
        "pool_fallbacks": pool_fallbacks,
    }
