"""ASCII chart rendering."""

import pytest

from repro.analysis.charts import (
    bar_chart,
    grouped_bar_chart,
    log_bar_chart,
    stacked_shares,
)


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_title_and_unit(self):
        text = bar_chart([("x", 1.0)], title="T", unit="us")
        assert text.startswith("T\n")
        assert "1us" in text

    def test_zero_values(self):
        text = bar_chart([("a", 0.0), ("b", 2.0)])
        lines = text.splitlines()
        assert "#" not in lines[0]

    def test_empty(self):
        assert bar_chart([], title="nothing") == "nothing"


class TestLogBarChart:
    def test_log_compression(self):
        text = log_bar_chart([("big", 1000.0), ("small", 10.0)], width=30)
        lines = text.splitlines()
        big = lines[0].count("#")
        small = lines[1].count("#")
        # Log scale: 10 vs 1000 is 1/3 of the range above 1, not 1/100.
        assert small > big / 10
        assert big > small

    def test_nonpositive_filtered(self):
        assert log_bar_chart([("zero", 0.0)], title="t") == "t"

    def test_labels_aligned(self):
        text = log_bar_chart([("aa", 2.0), ("b", 3.0)])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestGrouped:
    def test_structure(self):
        text = grouped_bar_chart(
            [("G1", [("s1", 1.0), ("s2", 10.0)]), ("G2", [("s1", 5.0)])],
            title="grouped",
        )
        assert "grouped" in text
        assert "G1:" in text and "G2:" in text
        assert text.count("|") == 3


class TestStacked:
    def test_bar_width(self):
        rows = [("w", {"A": 0.5, "B": 0.5})]
        text = stacked_shares(rows, width=40, legend=[("A", "A"), ("B", "B")])
        bar_line = text.splitlines()[-1]
        inner = bar_line.split("|")[1]
        assert len(inner) == 40
        assert inner.count("A") == 20
        assert inner.count("B") == 20

    def test_legend_rendered(self):
        text = stacked_shares(
            [("x", {"A": 1.0})], legend=[("A", "a")], title="t"
        )
        assert "legend: a=A" in text
