"""Garbling throughput per label-hash backend (perf trajectory).

Unlike the table/figure benches this does not reproduce a paper artifact
-- it tracks *our* software substrate: gates-per-second for the scalar
reference vs. the batched NumPy backend, recorded as JSON so future PRs
can diff the trajectory.  Measurement and report assembly are the same
``repro.bench.throughput`` suite the ``repro bench throughput`` CLI
runs -- this harness only picks circuits and asserts acceptance bars.
The full AES-128 run (the paper's flagship garbling benchmark) is
marked ``slow``; the mixed-circuit run keeps the fast lane honest.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import BenchRunner
from repro.bench.throughput import DEFAULT_OUT, measure
from repro.gc.backends import available_backends
from repro.gc.backends.throughput import (
    build_bench_circuit,
    measure_parallel_scaling,
)


def _report(name: str, record_result, repeats: int = 2) -> dict:
    runner = BenchRunner(out=DEFAULT_OUT, repeats=repeats)
    result = measure(runner, circuit_name=name, worker_counts=None)
    record_result(f"throughput_{name}", json.dumps(result, indent=2))
    return result


def test_throughput_mixed8(record_result):
    result = _report("mixed8", record_result)
    assert "scalar" in result["backends"]
    for entry in result["backends"].values():
        assert entry["garble"]["gates_per_s"] > 0
        assert entry["evaluate"]["gates_per_s"] > 0


@pytest.mark.slow
def test_throughput_aes128(record_result):
    result = _report("aes128", record_result, repeats=1)
    if "numpy" not in available_backends():
        pytest.skip("NumPy backend unavailable")
    # The acceptance bar for the batched substrate: >= 5x garbler
    # gates/sec over the scalar reference on AES-128.
    assert result["speedup_vs_scalar"]["numpy"]["garble"] >= 5.0


@pytest.mark.slow
def test_parallel_worker_scaling_aes128(record_result):
    """Record the worker-scaling curve (software GE-scaling analogue).

    Whole-transcript correctness of the parallel backend is asserted by
    the gc test suite; here we only require the sweep to complete and
    record real numbers -- whether extra workers help is a property of
    the host's core count, which the report captures.
    """
    circuit = build_bench_circuit("aes128")
    result = measure_parallel_scaling(circuit, worker_counts=(1, 2, 4), repeats=1)
    record_result("throughput_parallel_scaling", json.dumps(result, indent=2))
    for entry in result["workers"].values():
        assert entry["garble"]["gates_per_s"] > 0
        assert entry["evaluate"]["gates_per_s"] > 0
