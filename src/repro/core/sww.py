"""Sliding Wire Window arithmetic (paper section 3.1.1).

The SWW is a scratchpad holding a *contiguous* range of wire addresses.
It is logically partitioned in half: the window starts at ``[0, n)`` and,
whenever the sequential output-wire frontier crosses its top, slides
forward by ``n/2`` -- so the window covering output address ``o`` is::

    half = n // 2
    w    = max(0, o // half - 1)
    window(o) = [w * half, w * half + n)

An input read below the window is **out of range** (OoR): the compiler
knows this statically, replaces the operand address with the OoR
sentinel 0, and streams the wire in through the OoRW queue.  A computed
wire is **live** if some later instruction reads it after the window has
slid past it; only live wires are written back to DRAM (the ESW pass).

This single module is shared by the ESW pass, stream generation, the
functional HAAC machine and the timing simulator -- compiler and
hardware can never disagree about residency (DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SlidingWindow", "WIRE_BYTES"]

WIRE_BYTES = 16  # one 128-bit label; the valid bit rides in the SRAM word


@dataclass(frozen=True)
class SlidingWindow:
    """Window arithmetic for an SWW of ``capacity`` wires.

    The capacity is in wires, not bytes: a 2 MB SWW holds 131072 16-byte
    labels.  ``capacity`` must be even (the window is halved).
    """

    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 4:
            raise ValueError("SWW capacity must be at least 4 wires")
        if self.capacity % 2:
            raise ValueError("SWW capacity must be even (logical halves)")

    @property
    def half(self) -> int:
        return self.capacity // 2

    @staticmethod
    def from_bytes(size_bytes: int) -> "SlidingWindow":
        return SlidingWindow(capacity=size_bytes // WIRE_BYTES)

    @property
    def size_bytes(self) -> int:
        return self.capacity * WIRE_BYTES

    def window_start(self, out_addr: int) -> int:
        """Low end of the window while output ``out_addr`` is produced."""
        if out_addr < 0:
            raise ValueError("addresses are non-negative")
        return max(0, (out_addr // self.half - 1)) * self.half

    def window_end(self, out_addr: int) -> int:
        """One past the high end of the window at output ``out_addr``."""
        return self.window_start(out_addr) + self.capacity

    def contains(self, wire_addr: int, out_addr: int) -> bool:
        """Is ``wire_addr`` on-chip while ``out_addr`` is being produced?

        Addresses above the window are also "contained" in the sense that
        they are *not yet written*; the compiler never emits such reads
        (topological order), and the simulator treats them as errors.
        """
        return wire_addr >= self.window_start(out_addr)

    def is_oor(self, wire_addr: int, out_addr: int) -> bool:
        """True when a read of ``wire_addr`` at frontier ``out_addr``
        must come through the OoRW queue."""
        return wire_addr < self.window_start(out_addr)

    def eviction_frontier(self, wire_addr: int) -> int:
        """First output address whose window no longer holds ``wire_addr``.

        A consumer producing output ``o >= eviction_frontier(w)`` must
        read ``w`` through the OoRW queue; equivalently ``w`` is live iff
        some consumer's output address reaches this frontier.
        """
        # Smallest o with window_start(o) > wire_addr:
        #   (o // half - 1) * half > wire_addr
        #   o // half > wire_addr / half + 1
        #   o >= (wire_addr // half + 2) * half
        return (wire_addr // self.half + 2) * self.half
