"""Ablation: circuit-level ILP vs work on HAAC (ripple vs Kogge-Stone).

A co-design question the paper's framework lets us ask: GC cost models
say "minimize AND gates" (ripple adder: n tables, depth n), but HAAC's
in-order GEs crave ILP (Kogge-Stone: ~2n*log n tables, depth log n).
This benchmark builds the same reduction with both adders and shows
where each wins: single-GE or bandwidth-bound configs favour fewer
tables, wide compute-bound configs can tolerate parallel adders.
"""

from repro.analysis.report import render_table
from repro.circuits.builder import CircuitBuilder
from repro.circuits.stdlib.integer import add, kogge_stone_add
from repro.core.compiler import OptLevel, compile_circuit
from repro.sim.config import HaacConfig
from repro.sim.dram import HBM2
from repro.sim.timing import simulate

_WIDTH = 32
_CHAIN = 64  # dependent additions: a worst case for ripple depth


def _build(adder):
    builder = CircuitBuilder()
    acc = builder.add_garbler_inputs(_WIDTH)
    operands = [builder.add_evaluator_inputs(_WIDTH) for _ in range(_CHAIN)]
    for operand in operands:
        acc = adder(builder, acc, operand)
    builder.mark_outputs(acc)
    return builder.build("chain")


def _single_adder_stats(adder):
    builder = CircuitBuilder()
    xs = builder.add_garbler_inputs(_WIDTH)
    ys = builder.add_evaluator_inputs(_WIDTH)
    builder.mark_outputs(adder(builder, xs, ys))
    return builder.build("one").stats()


def _rows():
    rows = []
    for label, adder in (("ripple", add), ("kogge-stone", kogge_stone_add)):
        single = _single_adder_stats(adder)
        circuit = _build(adder)
        stats = circuit.stats()
        for n_ges in (1, 16):
            config = HaacConfig(n_ges=n_ges, sww_bytes=64 * 1024, dram=HBM2)
            compiled = compile_circuit(
                circuit, config.window, config.n_ges,
                opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
            )
            sim = simulate(compiled.streams, config)
            rows.append([
                label, n_ges, single.levels, stats.gates, stats.and_gates,
                stats.levels, sim.compute_cycles, sim.runtime_s * 1e6,
            ])
    return rows


def test_ablation_adders(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["Adder", "GEs", "1-add depth", "Chain gates", "AND",
         "Chain depth", "Compute cyc", "Runtime(us)"],
        rows,
        title=(
            "Ablation: ripple vs Kogge-Stone, 64 dependent 32-bit adds "
            "(HBM2).  Finding: KS wins single-add latency, but dependent "
            "ripple adds pipeline across bit positions (chain depth ~ "
            "width + chain, not width * chain), so the cheaper ripple "
            "adder wins chains -- GC folklore 'minimize ANDs' holds on "
            "HAAC here."
        ),
    )
    by_key = {(row[0], row[1]): row for row in rows}
    # Kogge-Stone halves the *single-adder* critical path...
    assert by_key[("kogge-stone", 1)][2] < by_key[("ripple", 1)][2] / 2
    # ...at the cost of more AND gates.
    assert by_key[("kogge-stone", 1)][4] > by_key[("ripple", 1)][4]
    # But chained ripple adds skew-pipeline: chain depth is far below
    # width * chain, and the cheaper circuit wins on the machine.
    assert by_key[("ripple", 1)][5] < _WIDTH * _CHAIN / 4
    assert (
        by_key[("ripple", 16)][7] <= by_key[("kogge-stone", 16)][7] * 1.05
    )
    record_result("ablation_adders", text)
