"""Area/power/energy models vs the paper's Table 4 and Figure 9."""

import pytest

from repro.core.compiler import OptLevel, compile_circuit
from repro.hwmodel.area import PAPER_AREA_MM2, area_model
from repro.hwmodel.energy import energy_model
from repro.hwmodel.power import CPU_POWER_W, PAPER_POWER_MW, power_model
from repro.hwmodel.technology import TSMC_16, TSMC_28
from repro.sim.config import HaacConfig
from repro.sim.dram import HBM2
from repro.sim.timing import simulate


@pytest.fixture
def paper_config():
    return HaacConfig.paper_default()


class TestArea:
    def test_reproduces_table4(self, paper_config):
        area = area_model(paper_config)
        for key, expected in PAPER_AREA_MM2.items():
            if key == "total_haac":
                continue
            assert getattr(area, key) == pytest.approx(expected, rel=1e-6)
        assert area.total_haac == pytest.approx(4.33, abs=0.02)

    def test_total_excludes_phy(self, paper_config):
        area = area_model(paper_config)
        assert area.total_with_phy == pytest.approx(area.total_haac + 14.9)

    def test_scales_with_ges(self, paper_config):
        half = area_model(paper_config.with_ges(8))
        full = area_model(paper_config)
        assert half.halfgate == pytest.approx(full.halfgate / 2)
        # Forwarding scales with GE pairs.
        assert half.fwd == pytest.approx(full.fwd / 4)

    def test_scales_with_sww(self, paper_config):
        half = area_model(paper_config.with_sww_bytes(1024 * 1024))
        full = area_model(paper_config)
        assert half.sww_sram == pytest.approx(full.sww_sram / 2)

    def test_28nm_larger(self, paper_config):
        assert (
            area_model(paper_config, TSMC_28).total_haac
            > area_model(paper_config, TSMC_16).total_haac
        )
        assert area_model(paper_config, TSMC_28).halfgate == pytest.approx(
            2.15 * 1.9, rel=1e-6
        )


class TestPower:
    def test_reproduces_table4(self, paper_config):
        power = power_model(paper_config)
        for key, expected in PAPER_POWER_MW.items():
            if key == "total_haac":
                continue
            assert getattr(power, key) == pytest.approx(expected, rel=1e-6)
        assert power.total_haac == pytest.approx(1502, abs=1)

    def test_power_density_matches_paper(self, paper_config):
        power = power_model(paper_config)
        area = area_model(paper_config)
        assert power.power_density_w_mm2(area.total_haac) == pytest.approx(
            0.35, abs=0.01
        )

    def test_28nm_higher_power(self, paper_config):
        assert power_model(paper_config, TSMC_28).halfgate == pytest.approx(
            1253 / 0.4, rel=1e-6
        )


class TestEnergy:
    def _sim(self, circuit, config):
        result = compile_circuit(
            circuit, config.window, config.n_ges,
            opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
        )
        return simulate(result.streams, config)

    def test_halfgate_dominates(self, mixed_circuit):
        """Figure 9: the Half-Gate unit consumes most of the energy."""
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16, dram=HBM2)
        sim = self._sim(mixed_circuit, config)
        energy = energy_model(sim, config)
        shares = energy.normalized()
        assert shares["Half-Gate"] > 0.4
        assert max(shares, key=shares.get) == "Half-Gate"

    def test_shares_sum_to_one(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16, dram=HBM2)
        energy = energy_model(self._sim(mixed_circuit, config), config)
        assert sum(energy.normalized().values()) == pytest.approx(1.0)

    def test_efficiency_vs_cpu_positive(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16, dram=HBM2)
        energy = energy_model(self._sim(mixed_circuit, config), config)
        # CPU at 25 W for 1 ms vs micro-joules on HAAC.
        assert energy.efficiency_vs_cpu(1e-3) > 100

    def test_cpu_power_constant(self):
        assert CPU_POWER_W == 25.0

    def test_total_is_sum(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=64 * 16, dram=HBM2)
        energy = energy_model(self._sim(mixed_circuit, config), config)
        parts = (
            energy.halfgate + energy.freexor + energy.fwd
            + energy.crossbar + energy.sram + energy.hbm2_phy
        )
        assert energy.total == pytest.approx(parts)
