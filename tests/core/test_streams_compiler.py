"""Stream generation and the compiler driver."""

import random

import pytest

from repro.circuits.netlist import GateOp
from repro.core.compiler import OptLevel, compile_best, compile_circuit
from repro.core.isa import HaacOp, InstructionEncoding, decode_instruction
from repro.core.passes.streams import ScheduleParams, generate_streams
from repro.core.sww import SlidingWindow
from repro.sim.config import HaacConfig
from tests.conftest import compile_all_levels, random_circuit


@pytest.fixture
def config():
    return HaacConfig(n_ges=4, sww_bytes=64 * 16)  # 64-wire window


@pytest.fixture
def compiled(mixed_circuit, config):
    return compile_circuit(
        mixed_circuit, config.window, config.n_ges,
        opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
    )


class TestStreamPartitioning:
    def test_every_instruction_assigned_once(self, compiled):
        streams = compiled.streams
        seen = sorted(
            position for ge in streams.ges for position in ge.positions
        )
        assert seen == list(range(len(streams.program.instructions)))

    def test_ge_streams_in_program_order(self, compiled):
        for ge in compiled.streams.ges:
            assert ge.positions == sorted(ge.positions)

    def test_table_counts_sum_to_ands(self, compiled):
        streams = compiled.streams
        assert sum(ge.n_tables for ge in streams.ges) == streams.program.n_and

    def test_issue_cycles_respect_dependences(self, compiled):
        streams = compiled.streams
        program = streams.program
        params = streams.params
        for position, gate in enumerate(program.netlist.gates):
            issue = streams.issue_cycle[position]
            for wire in gate.inputs():
                if wire < program.n_inputs:
                    continue
                producer = wire - program.n_inputs
                producer_instr = program.instructions[producer]
                latency = (
                    params.and_latency
                    if producer_instr.op is HaacOp.AND
                    else params.xor_latency
                )
                assert issue >= streams.issue_cycle[producer] + latency or (
                    # same-GE forwarding cannot beat the producer latency
                    False
                )

    def test_per_ge_one_issue_per_cycle(self, compiled):
        streams = compiled.streams
        for ge_id, ge in enumerate(streams.ges):
            issues = [streams.issue_cycle[p] for p in ge.positions]
            assert all(b > a for a, b in zip(issues, issues[1:]))


class TestOorAnalysis:
    def test_oor_flags_match_window(self, compiled):
        streams = compiled.streams
        program = streams.program
        window = streams.window
        for ge in streams.ges:
            for local, position in enumerate(ge.positions):
                gate = program.netlist.gates[position]
                out = program.out_addr(position)
                assert ge.oor_a[local] == window.is_oor(gate.a, out)
                assert ge.oor_b[local] == window.is_oor(gate.b, out)

    def test_oor_queue_order_matches_flags(self, compiled):
        streams = compiled.streams
        program = streams.program
        for ge in streams.ges:
            expected = []
            for local, position in enumerate(ge.positions):
                gate = program.netlist.gates[position]
                if ge.oor_a[local]:
                    expected.append(gate.a)
                if ge.oor_b[local]:
                    expected.append(gate.b)
            assert ge.oor_addresses == expected

    def test_large_window_no_oor(self, mixed_circuit):
        config = HaacConfig(n_ges=4, sww_bytes=1 << 22)
        result = compile_circuit(
            mixed_circuit, config.window, config.n_ges,
            opt=OptLevel.RO_RN_ESW, params=config.schedule_params(),
        )
        assert result.streams.oor_reads == 0


class TestWindowSync:
    def test_writer_waits_for_slot_readers(self, compiled):
        """No wire may be overwritten (slot collision) before its last
        program-order-earlier in-window reader issues."""
        streams = compiled.streams
        program = streams.program
        capacity = streams.window.capacity
        last_read = {}
        for position, gate in enumerate(program.netlist.gates):
            issue = streams.issue_cycle[position]
            out = program.out_addr(position)
            evicted = out - capacity
            if evicted >= 0 and evicted in last_read:
                assert issue >= last_read[evicted]
            for wire in gate.inputs():
                last_read[wire] = max(last_read.get(wire, 0), issue + 1)


class TestMachineEncoding:
    def test_machine_words_decode(self, compiled):
        streams = compiled.streams
        window = streams.window
        encoding = InstructionEncoding.for_sww_wires(window.capacity + 1)
        for ge in streams.ges:
            words = ge.encode_machine_words(window)
            assert len(words) == len(ge.instructions)
            for word, instr, a_oor, b_oor in zip(
                words, ge.instructions, ge.oor_a, ge.oor_b
            ):
                decoded = decode_instruction(word, encoding)
                assert decoded.op is instr.op
                assert (decoded.wa == 0) == a_oor
                assert (decoded.wb == 0) == b_oor
                if not a_oor:
                    assert decoded.wa == (instr.wa % window.capacity) + 1


class TestCompilerDriver:
    def test_all_levels_compile_and_validate(self, mixed_circuit, config):
        results = compile_all_levels(mixed_circuit, config)
        for opt, result in results.items():
            result.program.validate()
            assert result.opt is opt

    def test_esw_reduces_live(self, mixed_circuit, config):
        results = compile_all_levels(mixed_circuit, config)
        assert (
            results[OptLevel.RO_RN_ESW].program.n_live
            <= results[OptLevel.RO_RN].program.n_live
        )

    def test_without_esw_all_live(self, mixed_circuit, config):
        results = compile_all_levels(mixed_circuit, config)
        for opt in (OptLevel.BASELINE, OptLevel.RO_RN, OptLevel.SEG_RN):
            assert results[opt].program.live_fraction() == 1.0

    def test_reorder_reduces_makespan(self, config):
        rng = random.Random(13)
        # A deep chain-heavy circuit where reordering matters.
        circuit = random_circuit(rng, n_inputs=8, n_gates=400, and_fraction=0.5)
        results = compile_all_levels(circuit, config)
        assert (
            results[OptLevel.RO_RN].streams.makespan
            <= results[OptLevel.BASELINE].streams.makespan
        )

    def test_compile_best_picks_minimum(self, mixed_circuit, config):
        def score(result):
            return float(result.streams.makespan)

        best, scores = compile_best(
            mixed_circuit, config.window, config.n_ges, score,
            params=config.schedule_params(),
        )
        assert scores[best.opt] == min(scores.values())

    def test_applied_passes_recorded(self, compiled):
        passes = compiled.program.applied_passes
        assert any("full_reorder" in p for p in passes)
        assert any("rename" in p for p in passes)
        assert any("esw" in p for p in passes)

    def test_more_ges_never_increases_makespan_much(self, mixed_circuit, config):
        window = config.window
        params = config.schedule_params()
        one = compile_circuit(mixed_circuit, window, 1, OptLevel.RO_RN_ESW, params)
        many = compile_circuit(mixed_circuit, window, 8, OptLevel.RO_RN_ESW, params)
        assert many.streams.makespan <= one.streams.makespan
